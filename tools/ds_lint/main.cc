// ds_lint CLI — first stage of ci.sh.
//
//   ds_lint [--root <dir>] [paths...]
//
// Paths (files or directories) default to src bench examples tests under
// the root. Exit status: 0 when clean, 1 when findings, 2 on usage errors.
// Output is deterministic: files are walked in sorted order and findings
// print in a stable (file, line, rule, message) order, so CI diffs review
// cleanly.
#include <algorithm>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <string>
#include <vector>

#include "lint.h"

namespace fs = std::filesystem;

namespace {

bool LintableFile(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

bool SkippedDir(const fs::path& p) {
  std::string name = p.filename().string();
  return name == "testdata" || name.rfind("build", 0) == 0 || name == ".git";
}

void Collect(const fs::path& p, std::vector<std::string>* out) {
  std::error_code ec;
  if (fs::is_directory(p, ec)) {
    std::vector<fs::path> entries;
    for (const auto& e : fs::directory_iterator(p, ec)) entries.push_back(e.path());
    std::sort(entries.begin(), entries.end());
    for (const fs::path& e : entries) {
      if (fs::is_directory(e, ec)) {
        if (!SkippedDir(e)) Collect(e, out);
      } else if (LintableFile(e)) {
        out->push_back(e.string());
      }
    }
  } else if (fs::exists(p, ec) && LintableFile(p)) {
    out->push_back(p.string());
  } else {
    std::cerr << "ds_lint: warning: skipping " << p.string() << " (not found / not lintable)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::cout << "usage: ds_lint [--root <dir>] [paths...]\n"
                   "rules: ";
      for (const auto& r : ds_lint::AllRules()) std::cout << r->id() << " ";
      std::cout << "\nsuppress with: // ds-lint: allow(<rule>, <reason>)\n";
      return 0;
    } else if (argv[i][0] == '-') {
      std::cerr << "ds_lint: unknown flag " << argv[i] << "\n";
      return 2;
    } else {
      inputs.push_back(argv[i]);
    }
  }
  if (inputs.empty()) inputs = {"src", "bench", "examples", "tests"};

  std::vector<std::string> files;
  for (const std::string& in : inputs) {
    fs::path p(in);
    Collect(p.is_absolute() ? p : fs::path(root) / p, &files);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<ds_lint::Finding> findings = ds_lint::LintPaths(files, root);
  if (findings.empty()) {
    std::cout << "ds_lint: " << files.size() << " file(s) clean\n";
    return 0;
  }
  std::cout << ds_lint::FormatFindings(findings);
  std::cout << "ds_lint: " << findings.size() << " finding(s) in " << files.size()
            << " file(s)\n";
  return 1;
}
