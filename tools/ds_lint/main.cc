// ds_lint CLI — first stage of ci.sh.
//
//   ds_lint [--root <dir>] [--threads N] [--json] [--json-out <file>] [paths...]
//
// Paths (files or directories) default to src bench examples tests under
// the root. Exit status: 0 when clean, 1 when findings, 2 on usage errors.
// Output is deterministic regardless of --threads: files are walked in
// sorted order, the scan merges per-file results in input order, and
// findings print in a stable (file, line, rule, message) order, so CI diffs
// review cleanly. --json prints the findings as a stable-sorted JSON array;
// --json-out additionally writes that array to a file (the ci.sh build
// artifact) while keeping the human-readable text on stdout.
#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <string>
#include <thread>
#include <vector>

#include "lint.h"

namespace fs = std::filesystem;

namespace {

bool LintableFile(const fs::path& p) {
  std::string ext = p.extension().string();
  return ext == ".h" || ext == ".cc" || ext == ".cpp";
}

bool SkippedDir(const fs::path& p) {
  std::string name = p.filename().string();
  return name == "testdata" || name.rfind("build", 0) == 0 || name == ".git";
}

void Collect(const fs::path& p, std::vector<std::string>* out) {
  std::error_code ec;
  if (fs::is_directory(p, ec)) {
    std::vector<fs::path> entries;
    for (const auto& e : fs::directory_iterator(p, ec)) entries.push_back(e.path());
    std::sort(entries.begin(), entries.end());
    for (const fs::path& e : entries) {
      if (fs::is_directory(e, ec)) {
        if (!SkippedDir(e)) Collect(e, out);
      } else if (LintableFile(e)) {
        out->push_back(e.string());
      }
    }
  } else if (fs::exists(p, ec) && LintableFile(p)) {
    out->push_back(p.string());
  } else {
    std::cerr << "ds_lint: warning: skipping " << p.string() << " (not found / not lintable)\n";
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::string root = ".";
  std::string json_out;
  bool json = false;
  // Default to the hardware parallelism (capped — the scan is I/O-light and
  // more threads than files buys nothing); output is identical either way.
  int threads = static_cast<int>(std::thread::hardware_concurrency());
  if (threads < 1) threads = 1;
  if (threads > 16) threads = 16;
  std::vector<std::string> inputs;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--root") == 0 && i + 1 < argc) {
      root = argv[++i];
    } else if (std::strcmp(argv[i], "--threads") == 0 && i + 1 < argc) {
      threads = std::atoi(argv[++i]);
      if (threads < 1) {
        std::cerr << "ds_lint: --threads wants a positive integer\n";
        return 2;
      }
    } else if (std::strcmp(argv[i], "--json") == 0) {
      json = true;
    } else if (std::strcmp(argv[i], "--json-out") == 0 && i + 1 < argc) {
      json_out = argv[++i];
    } else if (std::strcmp(argv[i], "--help") == 0) {
      std::cout << "usage: ds_lint [--root <dir>] [--threads N] [--json] "
                   "[--json-out <file>] [paths...]\n"
                   "rules: ";
      for (const auto& r : ds_lint::AllRules()) std::cout << r->id() << " ";
      std::cout << "\nsuppress with: // ds-lint: allow(<rule>, <reason>)\n";
      return 0;
    } else if (argv[i][0] == '-') {
      std::cerr << "ds_lint: unknown flag " << argv[i] << "\n";
      return 2;
    } else {
      inputs.push_back(argv[i]);
    }
  }
  if (inputs.empty()) inputs = {"src", "bench", "examples", "tests"};

  std::vector<std::string> files;
  for (const std::string& in : inputs) {
    fs::path p(in);
    Collect(p.is_absolute() ? p : fs::path(root) / p, &files);
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());

  std::vector<ds_lint::Finding> findings = ds_lint::LintPaths(files, root, threads);
  if (!json_out.empty()) {
    std::ofstream out(json_out, std::ios::binary | std::ios::trunc);
    if (!out) {
      std::cerr << "ds_lint: cannot write " << json_out << "\n";
      return 2;
    }
    out << ds_lint::FormatFindingsJson(findings);
  }
  if (json) {
    std::cout << ds_lint::FormatFindingsJson(findings);
    return findings.empty() ? 0 : 1;
  }
  if (findings.empty()) {
    std::cout << "ds_lint: " << files.size() << " file(s) clean\n";
    return 0;
  }
  std::cout << ds_lint::FormatFindings(findings);
  std::cout << "ds_lint: " << findings.size() << " finding(s) in " << files.size()
            << " file(s)\n";
  return 1;
}
