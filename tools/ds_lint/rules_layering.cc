// Family E: the src/ layering DAG. Each directory under src/ is a module;
// the table below is the complete set of allowed include edges, derived from
// the mechanism/policy layering the tree has converged on:
//
//   common ← obs ← sim ← hw ← {model, workload, rtc} ← distflow ← flowserve
//                                                   ↖ ctrl ← serving ← faults
//
// (See DESIGN.md for the drawn-out DAG.) Anything not in the table — a new
// module, a new edge, or an edge that closes a cycle — fails the lint until
// the table is extended deliberately. This keeps the splits from PRs 3/4/7
// (sched policy, autoscaler policy, frontend routing) from eroding silently:
// a "quick" #include from a mechanism layer up into a policy layer is exactly
// the kind of change that compiles fine and unravels the architecture.
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lint.h"
#include "rules_util.h"

namespace ds_lint {
namespace {

// module -> modules it may include. Every module may include itself.
const std::map<std::string, std::set<std::string>>& AllowedDeps() {
  static const std::map<std::string, std::set<std::string>>* kEdges =
      new std::map<std::string, std::set<std::string>>{
          {"common", {}},
          {"obs", {"common"}},
          {"sim", {"common", "obs"}},
          {"hw", {"common", "obs", "sim"}},
          {"model", {"common", "obs", "sim", "hw"}},
          {"workload", {"common", "obs", "sim", "hw", "model"}},
          {"rtc", {"common", "obs", "sim", "hw"}},
          {"distflow", {"common", "obs", "sim", "hw", "rtc"}},
          {"flowserve",
           {"common", "obs", "sim", "hw", "model", "workload", "rtc",
            "distflow"}},
          {"ctrl", {"common", "obs", "sim", "hw", "workload"}},
          {"serving",
           {"common", "obs", "sim", "hw", "model", "workload", "rtc",
            "distflow", "flowserve", "ctrl"}},
          {"faults",
           {"common", "obs", "sim", "hw", "model", "workload", "rtc",
            "distflow", "flowserve", "ctrl", "serving"}},
      };
  return *kEdges;
}

// Module of a linted file: the path component after the first "src"
// component ("src/flowserve/engine.cc" -> "flowserve"). Empty for files
// outside src/ (tests, benches, fixtures without a src segment).
std::string ModuleOfPath(const std::string& path) {
  size_t pos = 0;
  while (pos < path.size()) {
    size_t slash = path.find('/', pos);
    std::string comp =
        path.substr(pos, slash == std::string::npos ? std::string::npos
                                                    : slash - pos);
    if (comp == "src" && slash != std::string::npos) {
      size_t next = path.find('/', slash + 1);
      if (next == std::string::npos) return "";  // file directly under src/
      return path.substr(slash + 1, next - slash - 1);
    }
    if (slash == std::string::npos) break;
    pos = slash + 1;
  }
  return "";
}

struct IncludeEdge {
  std::string target;  // included module
  int line = 0;
};

// Parses `#include "mod/..."` directives into module edges. Angle includes
// and project includes without a directory (ds_lint's own headers) are not
// module edges.
std::vector<IncludeEdge> ParseIncludes(const FileCtx& f) {
  std::vector<IncludeEdge> edges;
  for (const Token& t : f.lexed.tokens) {
    if (t.kind != Tok::kPreproc) continue;
    size_t inc = t.text.find("include");
    if (inc == std::string::npos) continue;
    size_t open = t.text.find('"', inc);
    if (open == std::string::npos) continue;
    size_t close = t.text.find('"', open + 1);
    if (close == std::string::npos) continue;
    std::string path = t.text.substr(open + 1, close - open - 1);
    size_t slash = path.find('/');
    if (slash == std::string::npos) continue;
    edges.push_back({path.substr(0, slash), t.line});
  }
  return edges;
}

class LayeringEdgeRule : public Rule {
 public:
  std::string_view id() const override { return "layering-edge"; }

  void Check(const FileCtx& f, const ProjectIndex& index,
             std::vector<Finding>* out) const override {
    (void)index;
    std::string mod = ModuleOfPath(f.path);
    if (mod.empty()) return;
    const auto& table = AllowedDeps();
    auto row = table.find(mod);
    for (const IncludeEdge& e : ParseIncludes(f)) {
      if (e.target == mod) continue;  // intra-module includes always legal
      if (table.count(e.target) == 0) continue;  // not a src/ module path
      if (row == table.end()) {
        out->push_back({f.path, e.line, std::string(id()),
                        "module '" + mod +
                            "' is not in the layering table (tools/ds_lint/"
                            "rules_layering.cc) — add it with an explicit "
                            "allowed-dependency set"});
        return;
      }
      if (row->second.count(e.target) == 0) {
        out->push_back(
            {f.path, e.line, std::string(id()),
             "layering violation: module '" + mod + "' may not include '" +
                 e.target + "' — allowed deps are {" + Joined(row->second) +
                 "}; either invert the dependency or extend the DAG in "
                 "rules_layering.cc (and DESIGN.md) deliberately"});
      }
    }
  }

 private:
  static std::string Joined(const std::set<std::string>& deps) {
    std::string s;
    for (const std::string& d : deps) {
      if (!s.empty()) s += ", ";
      s += d;
    }
    return s;
  }
};

class LayeringCycleRule : public Rule {
 public:
  std::string_view id() const override { return "layering-cycle"; }

  void Check(const FileCtx& f, const ProjectIndex& index,
             std::vector<Finding>* out) const override {
    std::string mod = ModuleOfPath(f.path);
    if (mod.empty()) return;
    for (const IncludeEdge& e : ParseIncludes(f)) {
      if (e.target == mod) continue;
      if (index.module_deps.count(e.target) == 0 &&
          AllowedDeps().count(e.target) == 0) {
        continue;  // not a module include
      }
      // This file contributes the edge mod -> e.target. If the global graph
      // can get from e.target back to mod, that edge closes a cycle.
      std::vector<std::string> path;
      if (FindPath(index.module_deps, e.target, mod, &path)) {
        std::string cycle = mod;
        for (const std::string& step : path) cycle += " -> " + step;
        out->push_back({f.path, e.line, std::string(id()),
                        "include closes a module cycle: " + cycle +
                            " — cyclic modules cannot be layered, tested, or "
                            "linked independently; break the cycle by moving "
                            "the shared types down a layer"});
      }
    }
  }

 private:
  // DFS from `from` to `to` over the module graph; neighbors visit in sorted
  // (std::set) order so the reported path is deterministic.
  static bool FindPath(const std::map<std::string, std::set<std::string>>& g,
                       const std::string& from, const std::string& to,
                       std::vector<std::string>* path) {
    path->push_back(from);
    if (from == to) return true;
    auto it = g.find(from);
    if (it != g.end()) {
      for (const std::string& next : it->second) {
        if (next == from) continue;
        // `path` doubles as the visited set; module graphs are tiny.
        bool seen = false;
        for (const std::string& p : *path) {
          if (p == next) {
            seen = true;
            break;
          }
        }
        if (seen) continue;
        if (FindPath(g, next, to, path)) return true;
      }
    }
    path->pop_back();
    return false;
  }
};

}  // namespace

void IndexIncludeGraph(const FileCtx& file, ProjectIndex* index) {
  std::string mod = ModuleOfPath(file.path);
  if (mod.empty()) return;
  for (const IncludeEdge& e : ParseIncludes(file)) {
    if (e.target != mod) index->module_deps[mod].insert(e.target);
  }
}

std::vector<std::unique_ptr<Rule>> MakeLayeringRules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<LayeringEdgeRule>());
  rules.push_back(std::make_unique<LayeringCycleRule>());
  return rules;
}

}  // namespace ds_lint
