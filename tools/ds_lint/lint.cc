#include "lint.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <sstream>
#include <thread>

namespace ds_lint {
namespace {

struct Suppression {
  int line = 0;         // line of the allow comment
  int target_line = 0;  // line the suppression applies to
  std::string rule;
  std::string reason;
  bool used = false;
};

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

// Parses every `allow(<rule>[, <reason>])` in comments tagged `ds-lint:`.
// A suppression applies to its own line, or — when the comment stands alone
// on a line — to the next line that carries code. It never reaches further:
// `allow(...)` two lines above a violation does not silence it.
std::vector<Suppression> ParseSuppressions(const FileCtx& f,
                                           std::vector<Finding>* out) {
  std::vector<Suppression> sups;
  for (const Comment& c : f.lexed.comments) {
    size_t tag = c.text.find("ds-lint:");
    if (tag == std::string::npos) continue;
    int target = c.line;
    if (c.standalone) {
      target = c.line;  // fallback if nothing follows
      int best = 0;
      for (const Token& t : f.lexed.tokens) {
        if (t.line > c.line && (best == 0 || t.line < best)) best = t.line;
      }
      if (best != 0) target = best;
    }
    size_t pos = tag;
    bool saw_allow = false;
    while ((pos = c.text.find("allow(", pos)) != std::string::npos) {
      saw_allow = true;
      size_t open = pos + 5;
      size_t close = c.text.find(')', open);
      if (close == std::string::npos) {
        out->push_back({f.path, c.line, "bad-suppression",
                        "malformed suppression: missing ')' after allow("});
        break;
      }
      std::string inner = c.text.substr(open + 1, close - open - 1);
      size_t comma = inner.find(',');
      std::string rule = Trim(comma == std::string::npos ? inner : inner.substr(0, comma));
      std::string reason =
          comma == std::string::npos ? "" : Trim(inner.substr(comma + 1));
      if (!IsKnownRule(rule)) {
        out->push_back({f.path, c.line, "bad-suppression",
                        "allow(" + rule + ") names an unknown rule"});
      } else if (reason.empty()) {
        out->push_back({f.path, c.line, "bad-suppression",
                        "allow(" + rule +
                            ") must carry a reason: allow(" + rule + ", <why>)"});
      } else {
        sups.push_back({c.line, target, rule, reason, false});
      }
      pos = close;
    }
    if (!saw_allow) {
      out->push_back({f.path, c.line, "bad-suppression",
                      "'ds-lint:' comment without an allow(<rule>, <reason>) clause"});
    }
  }
  return sups;
}

}  // namespace

const std::vector<std::unique_ptr<Rule>>& AllRules() {
  static const std::vector<std::unique_ptr<Rule>>* rules = [] {
    auto* all = new std::vector<std::unique_ptr<Rule>>();
    for (auto* make : {MakeDeterminismRules, MakeStatusRules, MakeObsRules,
                       MakeHygieneRules, MakeCtrlRules, MakeDeferredRules,
                       MakeLayeringRules, MakeTimeRules}) {
      for (auto& r : make()) all->push_back(std::move(r));
    }
    return all;
  }();
  return *rules;
}

bool IsKnownRule(std::string_view id) {
  for (const auto& r : AllRules()) {
    if (r->id() == id) return true;
  }
  return false;
}

FileCtx BuildFileCtx(std::string path, const std::string& source) {
  FileCtx ctx;
  ctx.path = std::move(path);
  ctx.is_header = ctx.path.size() >= 2 && ctx.path.rfind(".h") == ctx.path.size() - 2;
  ctx.lexed = Lex(source);
  ctx.structure = Scan(ctx.lexed.tokens);
  return ctx;
}

namespace {

// Pass 2 for one file: rules, suppressions, stale suppressions.
void LintOneFile(const FileCtx& f, const ProjectIndex& index,
                 std::vector<Finding>* findings) {
  std::vector<Finding> raw;
  for (const auto& rule : AllRules()) rule->Check(f, index, &raw);
  std::vector<Finding> meta;  // bad-suppression findings, never suppressible
  std::vector<Suppression> sups = ParseSuppressions(f, &meta);
  for (Finding& fd : raw) {
    bool suppressed = false;
    for (Suppression& s : sups) {
      if (s.rule == fd.rule && s.target_line == fd.line) {
        s.used = true;
        suppressed = true;
      }
    }
    if (!suppressed) findings->push_back(std::move(fd));
  }
  for (const Suppression& s : sups) {
    if (!s.used) {
      findings->push_back({f.path, s.line, "stale-suppression",
                           "allow(" + s.rule +
                               ") matches no finding — remove the stale "
                               "suppression"});
    }
  }
  findings->insert(findings->end(), meta.begin(), meta.end());
}

// Runs fn(i) for every i in [0, n) across `threads` workers. Work is handed
// out by an atomic counter, but every slot writes only its own output cell,
// so scheduling order cannot leak into the result.
template <typename Fn>
void ParallelFor(size_t n, int threads, Fn fn) {
  int workers = threads;
  if (workers > static_cast<int>(n)) workers = static_cast<int>(n);
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  std::atomic<size_t> next{0};
  std::vector<std::thread> pool;
  pool.reserve(static_cast<size_t>(workers));
  for (int w = 0; w < workers; ++w) {
    pool.emplace_back([&] {
      for (size_t i = next.fetch_add(1); i < n; i = next.fetch_add(1)) fn(i);
    });
  }
  for (std::thread& t : pool) t.join();
}

}  // namespace

std::vector<Finding> LintSources(
    const std::vector<std::pair<std::string, std::string>>& sources,
    int threads) {
  // Rule registration is lazily initialized; touch it once before any worker
  // thread can race on the first lookup.
  AllRules();

  std::vector<FileCtx> files(sources.size());
  ParallelFor(sources.size(), threads, [&](size_t i) {
    files[i] = BuildFileCtx(sources[i].first, sources[i].second);
  });

  // Pass 1: cross-file index. Serial and in input order, so map/counter
  // contents are independent of worker scheduling.
  ProjectIndex index;
  for (const FileCtx& f : files) {
    for (const MemberDecl& m : f.structure.members) {
      if (m.unordered) {
        index.unordered_members[m.class_name].insert(m.name);
        index.unordered_member_names.insert(m.name);
      }
    }
    for (const FuncDecl& fn : f.structure.functions) {
      if (fn.returns_status) ++index.status_decls[fn.name];
      if (fn.returns_non_status) ++index.non_status_decls[fn.name];
    }
    IndexCtrlStateMachines(f, &index);
    IndexDeferredSinks(f, &index);
    IndexIncludeGraph(f, &index);
    IndexTimeTypedNames(f, &index);
  }

  // Pass 2: rules + suppressions, one output slot per file; the slots are
  // concatenated in file order before the final sort, so parallel and serial
  // runs emit byte-identical reports.
  std::vector<std::vector<Finding>> per_file(files.size());
  ParallelFor(files.size(), threads, [&](size_t i) {
    LintOneFile(files[i], index, &per_file[i]);
  });

  std::vector<Finding> findings;
  for (std::vector<Finding>& slot : per_file) {
    findings.insert(findings.end(), std::make_move_iterator(slot.begin()),
                    std::make_move_iterator(slot.end()));
  }
  std::sort(findings.begin(), findings.end());
  findings.erase(std::unique(findings.begin(), findings.end()), findings.end());
  return findings;
}

std::vector<Finding> LintPaths(const std::vector<std::string>& paths,
                               const std::string& strip_prefix, int threads) {
  std::vector<std::pair<std::string, std::string>> sources;
  std::vector<Finding> io_errors;
  for (const std::string& path : paths) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      io_errors.push_back({path, 0, "io-error", "cannot read file"});
      continue;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    std::string display = path;
    if (!strip_prefix.empty() && display.rfind(strip_prefix, 0) == 0) {
      display = display.substr(strip_prefix.size());
      while (!display.empty() && display.front() == '/') display.erase(display.begin());
    }
    sources.emplace_back(display, buf.str());
  }
  std::vector<Finding> findings = LintSources(sources, threads);
  findings.insert(findings.end(), io_errors.begin(), io_errors.end());
  std::sort(findings.begin(), findings.end());
  return findings;
}

std::string FormatFindings(const std::vector<Finding>& findings) {
  std::ostringstream out;
  for (const Finding& f : findings) {
    out << f.file << ":" << f.line << ": [" << f.rule << "] " << f.message << "\n";
  }
  return out.str();
}

namespace {

void JsonEscape(const std::string& s, std::ostringstream* out) {
  for (char c : s) {
    switch (c) {
      case '"': *out << "\\\""; break;
      case '\\': *out << "\\\\"; break;
      case '\n': *out << "\\n"; break;
      case '\t': *out << "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          static const char* hex = "0123456789abcdef";
          *out << "\\u00" << hex[(c >> 4) & 0xf] << hex[c & 0xf];
        } else {
          *out << c;
        }
    }
  }
}

}  // namespace

std::string FormatFindingsJson(const std::vector<Finding>& findings) {
  if (findings.empty()) return "[]\n";
  std::ostringstream out;
  out << "[";
  for (size_t i = 0; i < findings.size(); ++i) {
    const Finding& f = findings[i];
    out << (i == 0 ? "\n" : ",\n") << "  {\"rule\": \"";
    JsonEscape(f.rule, &out);
    out << "\", \"file\": \"";
    JsonEscape(f.file, &out);
    out << "\", \"line\": " << f.line << ", \"message\": \"";
    JsonEscape(f.message, &out);
    out << "\"}";
  }
  out << "\n]\n";
  return out.str();
}

}  // namespace ds_lint
