// Family H: mechanical hygiene that keeps the other rules (and the build)
// trustworthy: every header is include-guarded, headers never inject
// namespaces into includers, and ownership outside src/common/ goes through
// smart pointers / containers so the sanitizer pass stays meaningful.
#include <memory>
#include <sstream>
#include <string>

#include "lint.h"
#include "rules_util.h"

namespace ds_lint {
namespace {

// Splits a preprocessor directive into whitespace-separated words with the
// leading '#' glued to the first word ("# pragma" -> "#pragma").
std::vector<std::string> DirectiveWords(const std::string& text) {
  std::istringstream in(text);
  std::vector<std::string> words;
  std::string w;
  while (in >> w) words.push_back(w);
  if (words.size() >= 2 && words[0] == "#") {
    words.erase(words.begin());
    words[0] = "#" + words[0];
  }
  return words;
}

// Accepts either `#pragma once` or a classic `#ifndef G` / `#define G` pair
// as the first directives of a header.
class HeaderGuardRule : public Rule {
 public:
  std::string_view id() const override { return "header-guard"; }

  void Check(const FileCtx& f, const ProjectIndex&,
             std::vector<Finding>* out) const override {
    if (!f.is_header) return;
    const auto& t = f.lexed.tokens;
    // First token of the file must be a guard directive (comments are not
    // tokens, so a license/doc header is fine).
    if (t.empty()) return;
    int line = t[0].line;
    if (t[0].kind != Tok::kPreproc) {
      out->push_back({f.path, line, std::string(id()),
                      "header must open with '#pragma once' or an "
                      "#ifndef/#define include guard"});
      return;
    }
    auto words = DirectiveWords(t[0].text);
    if (words.size() >= 2 && words[0] == "#pragma" && words[1] == "once") return;
    if (words.size() >= 2 && words[0] == "#ifndef") {
      size_t i = 1;
      while (i < t.size() && t[i].kind != Tok::kPreproc) ++i;
      auto def = i < t.size() ? DirectiveWords(t[i].text) : std::vector<std::string>{};
      if (def.size() >= 2 && def[0] == "#define" && def[1] == words[1]) return;
      out->push_back({f.path, line, std::string(id()),
                      "include guard mismatch: #ifndef " + words[1] +
                          " is not followed by #define " + words[1]});
      return;
    }
    out->push_back({f.path, line, std::string(id()),
                    "header must open with '#pragma once' or an "
                    "#ifndef/#define include guard"});
  }
};

class UsingNamespaceHeaderRule : public Rule {
 public:
  std::string_view id() const override { return "using-namespace-header"; }

  void Check(const FileCtx& f, const ProjectIndex&,
             std::vector<Finding>* out) const override {
    if (!f.is_header) return;
    const auto& t = f.lexed.tokens;
    for (size_t i = 0; i + 1 < t.size(); ++i) {
      if (IsTok(t, i, "using") && IsTok(t, i + 1, "namespace")) {
        out->push_back({f.path, t[i].line, std::string(id()),
                        "'using namespace' in a header leaks into every "
                        "includer — qualify or alias instead"});
      }
    }
  }
};

class RawNewDeleteRule : public Rule {
 public:
  std::string_view id() const override { return "raw-new-delete"; }

  void Check(const FileCtx& f, const ProjectIndex&,
             std::vector<Finding>* out) const override {
    if (f.path.rfind("src/common/", 0) == 0) return;  // allocators live here
    const auto& t = f.lexed.tokens;
    for (size_t i = 0; i < t.size(); ++i) {
      if (!IsIdentTok(t, i)) continue;
      if (t[i].text == "new") {
        size_t p = PrevTok(t, i);
        // `operator new` declarations are not raw allocations.
        if (p != static_cast<size_t>(-1) && t[p].text == "operator") continue;
        out->push_back({f.path, t[i].line, std::string(id()),
                        "raw 'new' outside src/common/ — use std::make_unique "
                        "or a container"});
      } else if (t[i].text == "delete") {
        size_t p = PrevTok(t, i);
        // `= delete` (deleted functions) and `operator delete` declarations
        // are not raw deallocations.
        if (p != static_cast<size_t>(-1) &&
            (t[p].text == "=" || t[p].text == "operator")) {
          continue;
        }
        out->push_back({f.path, t[i].line, std::string(id()),
                        "raw 'delete' outside src/common/ — ownership must go "
                        "through smart pointers"});
      }
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> MakeHygieneRules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<HeaderGuardRule>());
  rules.push_back(std::make_unique<UsingNamespaceHeaderRule>());
  rules.push_back(std::make_unique<RawNewDeleteRule>());
  return rules;
}

}  // namespace ds_lint
