// Family D: determinism. The DES substrate must be bit-identical per seed
// (PAPER.md reproduction strategy; pinned end-to-end by determinism_test), so
// wall-clock reads, ambient randomness, environment lookups, and iteration
// over unordered containers are banned from the tree outright.
#include <array>
#include <memory>
#include <string>

#include "lint.h"
#include "rules_util.h"

namespace ds_lint {
namespace {

// Nondeterministic (or ambient-state) functions. All time must come from
// sim::Simulator::Now(), all randomness from common/rng.h, all configuration
// from explicit flags/structs.
constexpr std::array<const char*, 13> kBannedCalls = {
    "rand",       "srand",          "random",    "time",     "clock",
    "gettimeofday", "clock_gettime", "timespec_get", "localtime", "gmtime",
    "getenv",     "setenv",         "system",
};

// Nondeterministic types; mt19937 et al. are fine (seeded, deterministic),
// the entropy/clock sources are not.
constexpr std::array<const char*, 5> kBannedTypes = {
    "random_device", "system_clock", "steady_clock", "high_resolution_clock",
    "default_random_engine",
};

class BannedCallRule : public Rule {
 public:
  std::string_view id() const override { return "banned-call"; }

  void Check(const FileCtx& f, const ProjectIndex&,
             std::vector<Finding>* out) const override {
    const auto& t = f.lexed.tokens;
    for (size_t i = 0; i < t.size(); ++i) {
      if (!IsCallOf(t, i, /*require_free=*/true)) continue;
      // `name(` can also be a function *declaration* that merely shadows a
      // libc name (e.g. a member `time()`); the scanner already found those.
      if (IsDeclName(f, t[i])) continue;
      for (const char* banned : kBannedCalls) {
        if (t[i].text == banned) {
          out->push_back({f.path, t[i].line, std::string(id()),
                          "call to nondeterministic '" + t[i].text +
                              "' — use sim time (Simulator::Now), common/rng.h, "
                              "or explicit config instead"});
        }
      }
    }
  }

 private:
  static bool IsDeclName(const FileCtx& f, const Token& tok) {
    for (const FuncDecl& fn : f.structure.functions) {
      if (fn.line == tok.line && fn.name == tok.text) return true;
    }
    return false;
  }
};

class BannedTypeRule : public Rule {
 public:
  std::string_view id() const override { return "banned-type"; }

  void Check(const FileCtx& f, const ProjectIndex&,
             std::vector<Finding>* out) const override {
    const auto& t = f.lexed.tokens;
    for (size_t i = 0; i < t.size(); ++i) {
      if (!IsIdentTok(t, i)) continue;
      for (const char* banned : kBannedTypes) {
        if (t[i].text == banned) {
          out->push_back({f.path, t[i].line, std::string(id()),
                          "use of nondeterministic type/clock '" + t[i].text +
                              "' — seed a deterministic generator from "
                              "common/rng.h or read sim time"});
        }
      }
    }
  }
};

// Iteration over std::unordered_{map,set} *fields*: the per-class member
// index (built by the scanner) links each loop back to the declaration.
// Bare / this-> accesses resolve against the enclosing class; obj.member_
// accesses resolve against the member name across all classes, since a
// token-level tool cannot type `obj`.
class UnorderedIterRule : public Rule {
 public:
  std::string_view id() const override { return "unordered-iter"; }

  void Check(const FileCtx& f, const ProjectIndex& idx,
             std::vector<Finding>* out) const override {
    const auto& t = f.lexed.tokens;
    for (const FuncDecl& fn : f.structure.functions) {
      if (!fn.has_body) continue;
      for (size_t i = fn.body_begin; i < fn.body_end; ++i) {
        if (IsTok(t, i, "for") && IsTok(t, i + 1, "(")) {
          CheckRangeFor(f, idx, fn, i, out);
        }
        if ((IsTok(t, i, "begin") || IsTok(t, i, "cbegin")) && IsTok(t, i + 1, "(")) {
          CheckBeginCall(f, idx, fn, i, out);
        }
      }
    }
  }

 private:
  static bool IsUnordered(const ProjectIndex& idx, const std::string& cls,
                          const std::string& member, bool bare) {
    if (bare) {
      auto it = idx.unordered_members.find(cls);
      return it != idx.unordered_members.end() && it->second.count(member) > 0;
    }
    return idx.unordered_member_names.count(member) > 0;
  }

  void Emit(const FileCtx& f, int line, const std::string& member,
            std::vector<Finding>* out) const {
    out->push_back({f.path, line, std::string(id()),
                    "iteration over unordered member '" + member +
                        "' has nondeterministic order — drain a sorted snapshot "
                        "(SortedKeys/SortedItems/SortedValues, "
                        "common/sorted_view.h) or annotate with a reason"});
  }

  void CheckRangeFor(const FileCtx& f, const ProjectIndex& idx, const FuncDecl& fn,
                     size_t for_tok, std::vector<Finding>* out) const {
    const auto& t = f.lexed.tokens;
    size_t open = for_tok + 1;
    size_t close = MatchDelim(t, open);
    // The range-for ':' sits at paren depth 1; ignore '::' (own token).
    int depth = 0;
    size_t colon = 0;
    for (size_t i = open; i < close; ++i) {
      if (t[i].kind == Tok::kPreproc) continue;
      if (t[i].text == "(" || t[i].text == "[" || t[i].text == "{") ++depth;
      else if (t[i].text == ")" || t[i].text == "]" || t[i].text == "}") --depth;
      else if (t[i].text == ":" && depth == 1) { colon = i; break; }
    }
    if (colon == 0) return;  // classic for(;;)
    std::string member;
    bool bare = false;
    if (MemberChain(t, colon + 1, close, &member, &bare) &&
        IsUnordered(idx, fn.class_name, member, bare)) {
      Emit(f, t[for_tok].line, member, out);
    }
  }

  // `m_.begin()` / `m_.cbegin()` — explicit iterator loops over an
  // unordered member (find()/end() lookups are fine and not matched).
  void CheckBeginCall(const FileCtx& f, const ProjectIndex& idx, const FuncDecl& fn,
                      size_t begin_tok, std::vector<Finding>* out) const {
    const auto& t = f.lexed.tokens;
    size_t dot = PrevTok(t, begin_tok);
    if (dot == static_cast<size_t>(-1) || (t[dot].text != "." && t[dot].text != "->")) return;
    size_t mem = PrevTok(t, dot);
    if (!IsIdentTok(t, mem)) return;
    size_t before = PrevTok(t, mem);
    bool bare = true;
    if (before != static_cast<size_t>(-1) && (t[before].text == "." || t[before].text == "->")) {
      size_t obj = PrevTok(t, before);
      bare = obj != static_cast<size_t>(-1) && t[obj].text == "this";
    }
    if (IsUnordered(idx, fn.class_name, t[mem].text, bare)) {
      Emit(f, t[begin_tok].line, t[mem].text, out);
    }
  }
};

}  // namespace

std::vector<std::unique_ptr<Rule>> MakeDeterminismRules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<BannedCallRule>());
  rules.push_back(std::make_unique<BannedTypeRule>());
  rules.push_back(std::make_unique<UnorderedIterRule>());
  return rules;
}

}  // namespace ds_lint
