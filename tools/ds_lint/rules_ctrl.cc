// Family C: replicated control-plane state machines. Classes deriving from
// ctrl::CtrlStateMachine are deterministic replicas: their entire state is a
// fold of Apply(LogRecord) over the shared log, so replaying the same prefix
// must reproduce the same bits. Any member mutation outside Apply() (or a
// constructor, which only sets the pre-log initial state) silently forks the
// replica from the log and breaks failover replay — this family bans it at
// the token level. Helper methods invoked from Apply() must carry an
// `Apply` name prefix, which documents the contract at the call site.
#include <memory>
#include <set>
#include <string>

#include "lint.h"
#include "rules_util.h"

namespace ds_lint {
namespace {

constexpr size_t kNone = static_cast<size_t>(-1);

// Compound assignment and increment operators lex as single tokens, so each
// entry here is one punct token that writes through its left operand.
bool IsWriteOp(const std::string& text) {
  static const std::set<std::string>* ops = new std::set<std::string>{
      "=",  "+=", "-=", "*=",  "/=",  "%=", "&=",
      "|=", "^=", "<<=", ">>=", "++", "--"};
  return ops->count(text) > 0;
}

// Container methods that mutate the receiver. `find`/`at`/`count`/iterators
// are deliberately absent: reads stay legal everywhere.
bool IsMutatingCall(const std::string& name) {
  static const std::set<std::string>* calls = new std::set<std::string>{
      "push_back", "pop_back",  "push_front", "pop_front", "push",
      "pop",       "insert",    "erase",      "clear",     "assign",
      "resize",    "reserve",   "swap",       "emplace",   "emplace_back",
      "emplace_front"};
  return calls->count(name) > 0;
}

size_t NextCode(const std::vector<Token>& t, size_t i) {
  while (i < t.size() && t[i].kind == Tok::kPreproc) ++i;
  return i;
}

// True iff the member token at `i` (whose previous code token is `p`) is the
// target of a write: prefix/postfix ++/--, an assignment, a mutating
// container call, or any of those applied after one or more subscripts.
bool MutatesAt(const std::vector<Token>& t, size_t i, size_t p) {
  if (p != kNone && (t[p].text == "++" || t[p].text == "--")) return true;
  size_t j = NextCode(t, i + 1);
  // `m_[k] = v`, `m_[k][l] += v`, `m_[k].erase(...)`: skip subscripts.
  while (j < t.size() && t[j].kind == Tok::kPunct && t[j].text == "[") {
    size_t close = MatchDelim(t, j);
    if (close >= t.size()) return false;
    j = NextCode(t, close + 1);
  }
  if (j >= t.size()) return false;
  if (t[j].kind == Tok::kPunct && IsWriteOp(t[j].text)) return true;
  if (t[j].kind == Tok::kPunct && (t[j].text == "." || t[j].text == "->")) {
    size_t call = NextCode(t, j + 1);
    return IsIdentTok(t, call) && IsMutatingCall(t[call].text) &&
           IsTok(t, call + 1, "(");
  }
  return false;
}

class CtrlApplyOnlyRule : public Rule {
 public:
  std::string_view id() const override { return "ctrl-apply-only"; }

  void Check(const FileCtx& f, const ProjectIndex& index,
             std::vector<Finding>* out) const override {
    if (index.ctrl_members.empty()) return;
    const auto& t = f.lexed.tokens;
    for (const FuncDecl& fn : f.structure.functions) {
      if (!fn.has_body || fn.class_name.empty()) continue;
      auto cls = index.ctrl_members.find(fn.class_name);
      if (cls == index.ctrl_members.end()) continue;
      // Constructors/destructors set the pre-log initial state; Apply() and
      // Apply*-prefixed helpers are the log-application path itself.
      if (fn.name == fn.class_name) continue;
      if (fn.name.rfind("Apply", 0) == 0) continue;
      const std::set<std::string>& members = cls->second;
      for (size_t i = fn.body_begin + 1; i < fn.body_end; ++i) {
        if (!IsIdentTok(t, i) || members.count(t[i].text) == 0) continue;
        size_t p = PrevTok(t, i);
        if (p != kNone && (t[p].text == "." || t[p].text == "->")) {
          // `obj.member_` is some other object's member — unless the object
          // is `this`, in which case it is a bare access after all.
          size_t pp = PrevTok(t, p);
          if (pp == kNone || !IsIdentTok(t, pp) || t[pp].text != "this") continue;
        }
        if (MutatesAt(t, i, p)) {
          out->push_back(
              {f.path, t[i].line, std::string(id()),
               "'" + fn.class_name + "::" + fn.name + "' mutates state-machine "
               "member '" + t[i].text + "' outside Apply() — CtrlStateMachine "
               "state must change only by applying log records, or replayed "
               "replicas diverge from the leader"});
        }
      }
    }
  }
};

}  // namespace

void IndexCtrlStateMachines(const FileCtx& file, ProjectIndex* index) {
  const auto& t = file.lexed.tokens;
  for (size_t i = 0; i < t.size(); ++i) {
    if (!IsIdentTok(t, i) ||
        (t[i].text != "class" && t[i].text != "struct")) {
      continue;
    }
    size_t p = PrevTok(t, i);
    if (p != kNone && IsIdentTok(t, p) && t[p].text == "enum") continue;
    size_t name = NextCode(t, i + 1);
    if (!IsIdentTok(t, name)) continue;
    // Scan the base-clause region (between the class name and the body) for
    // the CtrlStateMachine base; forward declarations stop at ';'.
    bool derives = false;
    size_t open = name + 1;
    for (; open < t.size(); ++open) {
      if (t[open].kind == Tok::kPreproc) continue;
      if (t[open].text == "{" || t[open].text == ";") break;
      if (IsIdentTok(t, open) && t[open].text == "CtrlStateMachine") derives = true;
    }
    if (open >= t.size() || t[open].text != "{" || !derives) continue;
    size_t close = MatchDelim(t, open);
    if (close >= t.size()) continue;
    // Trailing-underscore identifiers in the class body are its members (the
    // style guide reserves the suffix for data members). Skipping `obj.x_`
    // accesses keeps other classes' members out of the set.
    std::set<std::string>& members = (*index).ctrl_members[t[name].text];
    for (size_t k = open + 1; k < close; ++k) {
      if (!IsIdentTok(t, k)) continue;
      const std::string& text = t[k].text;
      if (text.size() < 2 || text.back() != '_') continue;
      size_t kp = PrevTok(t, k);
      if (kp != kNone && (t[kp].text == "." || t[kp].text == "->")) continue;
      members.insert(text);
    }
  }
}

std::vector<std::unique_ptr<Rule>> MakeCtrlRules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<CtrlApplyOnlyRule>());
  return rules;
}

}  // namespace ds_lint
