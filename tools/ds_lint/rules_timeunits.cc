// Family F: sim-time unit discipline. All simulated time is integer
// nanoseconds (TimeNs/DurationNs), but configs and reports speak milliseconds
// and seconds — the classic failure is `deadline_ns < slo_ms` or
// `ScheduleAfter(50, ...)`, which compiles, replays deterministically, and is
// wrong by six orders of magnitude. The rules here infer a unit for each side
// of a comparison/addition/assignment — from `_ns/_us/_ms/_s` identifier
// suffixes, from project-wide TimeNs/DurationNs declarations (ProjectIndex),
// and from the common/time_units.h conversion helpers — and flag:
//   * time-unit-mix: both sides have known units and they differ;
//   * raw-time-literal: a bare numeric literal >= 1000 meets a known-ns value
//     (or is passed as a Schedule* delay) — name the unit via MsToNs/UsToNs/
//     SToNs instead.
// Multiplication/division are exempt (they are how conversions are written).
#include <cstdlib>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "lint.h"
#include "rules_util.h"

namespace ds_lint {
namespace {

constexpr size_t kNone = static_cast<size_t>(-1);

enum class Unit { kUnknown, kNs, kUs, kMs, kS };

const char* UnitName(Unit u) {
  switch (u) {
    case Unit::kNs: return "ns";
    case Unit::kUs: return "us";
    case Unit::kMs: return "ms";
    case Unit::kS: return "s";
    default: return "?";
  }
}

// Unit implied by an identifier's suffix (after stripping member-name
// trailing underscores): blk_time_ns -> ns, tbt_budget_ms_ -> ms.
Unit SuffixUnit(const std::string& name) {
  std::string n = name;
  while (!n.empty() && n.back() == '_') n.pop_back();
  auto ends = [&n](const char* suf) {
    size_t len = std::char_traits<char>::length(suf);
    return n.size() > len && n.compare(n.size() - len, len, suf) == 0;
  };
  if (ends("_ns")) return Unit::kNs;
  if (ends("_us")) return Unit::kUs;
  if (ends("_ms")) return Unit::kMs;
  if (ends("_s") || ends("_sec") || ends("_secs")) return Unit::kS;
  return Unit::kUnknown;
}

// Unit of the value produced by calling `name(...)`.
Unit CallUnit(const std::string& name) {
  static const std::map<std::string, Unit>* kHelpers =
      new std::map<std::string, Unit>{
          {"MsToNs", Unit::kNs},    {"UsToNs", Unit::kNs},
          {"SToNs", Unit::kNs},     {"NsToMs", Unit::kMs},
          {"NsToUs", Unit::kUs},    {"NsToS", Unit::kS},
      };
  auto it = kHelpers->find(name);
  return it == kHelpers->end() ? Unit::kUnknown : it->second;
}

// Names declared ns-typed in THIS file (locals, params, fields — any form).
// Plain variable names are deliberately not shared across files: `int step`
// in one test must not inherit ns-ness from `DurationNs step` in another
// translation unit. Function names and `_`-suffixed members do cross files
// via index.ns_typed_names, because their declaration is the shared one.
std::set<std::string> LocalNsNames(const FileCtx& f) {
  std::set<std::string> names;
  const auto& t = f.lexed.tokens;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (!IsIdentTok(t, i)) continue;
    if (t[i].text != "TimeNs" && t[i].text != "DurationNs") continue;
    size_t k = i + 1;
    while (k < t.size() &&
           (t[k].kind == Tok::kPreproc || IsTok(t, k, ">") || IsTok(t, k, "*") ||
            IsTok(t, k, "&") || IsTok(t, k, "const"))) {
      ++k;
    }
    if (k < t.size() && IsIdentTok(t, k) && t[k].text.size() >= 2) {
      names.insert(t[k].text);
    }
  }
  return names;
}

Unit NameUnit(const std::string& name, const ProjectIndex& index,
              const std::set<std::string>& local_ns) {
  Unit u = SuffixUnit(name);
  if (u != Unit::kUnknown) return u;
  if (name.size() >= 2 &&
      (index.ns_typed_names.count(name) > 0 || local_ns.count(name) > 0)) {
    return Unit::kNs;
  }
  return Unit::kUnknown;
}

// Binary operators whose operands must share a unit. * and / are the
// conversion operators themselves; %, <<, & etc. are bit/row math.
bool IsUnitOp(const std::string& s) {
  static const std::set<std::string>* kOps = new std::set<std::string>{
      "+", "-", "<", "<=", ">", ">=", "==", "!=", "+=", "-=", "="};
  return kOps->count(s) > 0;
}

// Numeric literal value, or -1 when not parseable (hex, etc.).
double LiteralValue(const std::string& text) {
  std::string digits;
  for (char c : text) {
    if (c != '\'') digits.push_back(c);
  }
  if (digits.size() > 1 && digits[0] == '0' &&
      (digits[1] == 'x' || digits[1] == 'X' || digits[1] == 'b')) {
    return -1.0;
  }
  char* end = nullptr;
  double v = std::strtod(digits.c_str(), &end);
  if (end == digits.c_str()) return -1.0;
  return v;
}

struct Operand {
  Unit unit = Unit::kUnknown;
  bool is_literal = false;
  double literal = -1.0;
  std::string text;  // identifier / callee for the message
};

// Matching open paren/bracket scanning backward from the closer at `i`.
size_t MatchBack(const std::vector<Token>& t, size_t close) {
  const std::string& c = t[close].text;
  std::string o = c == ")" ? "(" : c == "]" ? "[" : "";
  if (o.empty()) return kNone;
  int depth = 0;
  for (size_t i = close + 1; i-- > 0;) {
    if (t[i].kind == Tok::kPreproc) continue;
    if (t[i].kind == Tok::kPunct) {
      if (t[i].text == c) ++depth;
      else if (t[i].text == o) {
        if (--depth == 0) return i;
      }
    }
    if (i == 0) break;
  }
  return kNone;
}

// Operand to the RIGHT of the operator at `op`.
Operand RightOperand(const std::vector<Token>& t, size_t op,
                     const ProjectIndex& index,
                     const std::set<std::string>& local_ns) {
  Operand r;
  size_t i = op + 1;
  while (i < t.size() && t[i].kind == Tok::kPreproc) ++i;
  if (i >= t.size()) return r;
  if (IsTok(t, i, "-") || IsTok(t, i, "+")) {  // unary sign
    ++i;
    while (i < t.size() && t[i].kind == Tok::kPreproc) ++i;
  }
  if (i < t.size() && t[i].kind == Tok::kNumber) {
    r.is_literal = true;
    r.literal = LiteralValue(t[i].text);
    r.text = t[i].text;
    return r;
  }
  if (IsTok(t, i, "static_cast") && IsTok(t, i + 1, "<")) {
    if (IsIdentTok(t, i + 2) &&
        (t[i + 2].text == "TimeNs" || t[i + 2].text == "DurationNs")) {
      r.unit = Unit::kNs;
      r.text = "static_cast<" + t[i + 2].text + ">";
    }
    return r;
  }
  if (!IsIdentTok(t, i)) return r;
  // Walk the access chain forward: a::b.c->d ...
  size_t last = i;
  while (IsIdentTok(t, last) &&
         (IsTok(t, last + 1, "::") || IsTok(t, last + 1, ".") ||
          IsTok(t, last + 1, "->")) &&
         IsIdentTok(t, last + 2)) {
    last += 2;
  }
  const std::string& name = t[last].text;
  r.text = name;
  if (IsTok(t, last + 1, "(")) {
    r.unit = CallUnit(name);
    if (r.unit == Unit::kUnknown) r.unit = NameUnit(name, index, local_ns);
  } else {
    r.unit = NameUnit(name, index, local_ns);
  }
  return r;
}

// Operand to the LEFT of the operator at `op`.
Operand LeftOperand(const std::vector<Token>& t, size_t op,
                    const ProjectIndex& index,
                    const std::set<std::string>& local_ns) {
  Operand r;
  size_t i = PrevTok(t, op);
  if (i == kNone) return r;
  // Skip subscripts back to the subscripted name: times_[k] -> times_.
  while (IsTok(t, i, "]")) {
    size_t open = MatchBack(t, i);
    if (open == kNone) return r;
    i = PrevTok(t, open);
    if (i == kNone) return r;
  }
  if (t[i].kind == Tok::kNumber) {
    r.is_literal = true;
    r.literal = LiteralValue(t[i].text);
    r.text = t[i].text;
    return r;
  }
  if (IsTok(t, i, ")")) {
    size_t open = MatchBack(t, i);
    if (open == kNone) return r;
    size_t callee = PrevTok(t, open);
    if (callee != kNone && IsIdentTok(t, callee)) {
      r.text = t[callee].text;
      r.unit = CallUnit(t[callee].text);
      if (r.unit == Unit::kUnknown) r.unit = NameUnit(t[callee].text, index, local_ns);
    }
    return r;
  }
  if (!IsIdentTok(t, i)) return r;
  r.text = t[i].text;
  r.unit = NameUnit(t[i].text, index, local_ns);
  return r;
}

class TimeUnitMixRule : public Rule {
 public:
  std::string_view id() const override { return "time-unit-mix"; }

  void Check(const FileCtx& f, const ProjectIndex& index,
             std::vector<Finding>* out) const override {
    const auto& t = f.lexed.tokens;
    const std::set<std::string> local_ns = LocalNsNames(f);
    for (size_t i = 1; i + 1 < t.size(); ++i) {
      if (t[i].kind != Tok::kPunct || !IsUnitOp(t[i].text)) continue;
      Operand lhs = LeftOperand(t, i, index, local_ns);
      Operand rhs = RightOperand(t, i, index, local_ns);
      if (lhs.unit == Unit::kUnknown || rhs.unit == Unit::kUnknown) continue;
      if (lhs.unit == rhs.unit) continue;
      out->push_back(
          {f.path, t[i].line, std::string(id()),
           "'" + lhs.text + "' (" + UnitName(lhs.unit) + ") " + t[i].text +
               " '" + rhs.text + "' (" + UnitName(rhs.unit) +
               ") mixes time units — convert explicitly via "
               "common/time_units.h (MsToNs/UsToNs/SToNs/NsToMs/...)"});
    }
  }
};

class RawTimeLiteralRule : public Rule {
 public:
  std::string_view id() const override { return "raw-time-literal"; }

  void Check(const FileCtx& f, const ProjectIndex& index,
             std::vector<Finding>* out) const override {
    const auto& t = f.lexed.tokens;
    const std::set<std::string> local_ns = LocalNsNames(f);
    for (size_t i = 1; i + 1 < t.size(); ++i) {
      // Bare literal delay: ScheduleAfter(1000000, ...) / ScheduleAt(5e9, ...)
      if (IsIdentTok(t, i) &&
          (t[i].text == "ScheduleAfter" || t[i].text == "ScheduleAt") &&
          IsTok(t, i + 1, "(")) {
        size_t a = i + 2;
        while (a < t.size() && t[a].kind == Tok::kPreproc) ++a;
        if (a < t.size() && t[a].kind == Tok::kNumber && IsTok(t, a + 1, ",")) {
          double v = LiteralValue(t[a].text);
          if (v >= 1000.0) {
            out->push_back(
                {f.path, t[a].line, std::string(id()),
                 t[i].text + "(" + t[a].text + ", ...) passes a bare literal "
                 "as a nanosecond delay — name the unit: MsToNs/UsToNs/SToNs "
                 "from common/time_units.h"});
          }
        }
      }
      // ns value (op) bare literal >= 1000, either side.
      if (t[i].kind != Tok::kPunct || !IsUnitOp(t[i].text)) continue;
      Operand lhs = LeftOperand(t, i, index, local_ns);
      Operand rhs = RightOperand(t, i, index, local_ns);
      const Operand* ns_side = nullptr;
      const Operand* lit_side = nullptr;
      if (lhs.unit == Unit::kNs && rhs.is_literal) {
        ns_side = &lhs;
        lit_side = &rhs;
      } else if (rhs.unit == Unit::kNs && lhs.is_literal) {
        ns_side = &rhs;
        lit_side = &lhs;
      }
      if (ns_side == nullptr || lit_side->literal < 1000.0) continue;
      out->push_back(
          {f.path, t[i].line, std::string(id()),
           "'" + ns_side->text + "' (ns) " + t[i].text + " bare literal " +
               lit_side->text + " — magic nanosecond constants hide unit "
               "errors; write MsToNs/UsToNs/SToNs(...) from "
               "common/time_units.h"});
    }
  }
};

}  // namespace

// Only cross-file-safe names enter the global set: `TimeNs F(...)` function
// names (call sites share the declaration) and `_`-suffixed member names
// (the style guide reserves the suffix for fields, which keep their meaning
// wherever the class is used). Bare variable/parameter names stay file-local
// — see LocalNsNames above.
void IndexTimeTypedNames(const FileCtx& file, ProjectIndex* index) {
  const auto& t = file.lexed.tokens;
  for (size_t i = 0; i + 1 < t.size(); ++i) {
    if (!IsIdentTok(t, i)) continue;
    if (t[i].text != "TimeNs" && t[i].text != "DurationNs") continue;
    size_t k = i + 1;
    while (k < t.size() &&
           (t[k].kind == Tok::kPreproc || IsTok(t, k, ">") || IsTok(t, k, "*") ||
            IsTok(t, k, "&") || IsTok(t, k, "const"))) {
      ++k;
    }
    if (k >= t.size() || !IsIdentTok(t, k) || t[k].text.size() < 2) continue;
    const std::string& name = t[k].text;
    if (name.back() == '_' || IsTok(t, k + 1, "(")) {
      index->ns_typed_names.insert(name);
    }
  }
}

std::vector<std::unique_ptr<Rule>> MakeTimeRules() {
  std::vector<std::unique_ptr<Rule>> rules;
  rules.push_back(std::make_unique<TimeUnitMixRule>());
  rules.push_back(std::make_unique<RawTimeLiteralRule>());
  return rules;
}

}  // namespace ds_lint
