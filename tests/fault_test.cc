// Cancellation and fault-tolerance tests: request cancel paths in the
// engine, TE failure injection, and JE re-dispatch of lost jobs.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "common/time_units.h"
#include "ctrl/control_log.h"
#include "distflow/distflow.h"
#include "faults/fault_injector.h"
#include "flowserve/engine.h"
#include "hw/cluster.h"
#include "hw/link.h"
#include "serving/cluster_manager.h"
#include "serving/frontend.h"
#include "serving/job_executor.h"
#include "serving/predictor.h"
#include "sim/simulator.h"
#include "workload/tracegen.h"

namespace deepserve {
namespace {

flowserve::EngineConfig SmallEngine(flowserve::EngineRole role) {
  flowserve::EngineConfig config;
  config.model = model::ModelSpec::Tiny1B();
  config.parallelism = {1, 1, 1};
  config.role = role;
  config.kv_block_capacity_override = 4096;
  return config;
}

workload::RequestSpec MakeRequest(workload::RequestId id, int64_t prefill, int64_t decode,
                                  TokenId base = 700) {
  workload::RequestSpec spec;
  spec.id = id;
  spec.decode_len = decode;
  for (int64_t i = 0; i < prefill; ++i) {
    spec.prompt.push_back(base + static_cast<TokenId>(i % 8000));
  }
  return spec;
}

// ---------------- Engine cancellation ----------------

class CancelTest : public ::testing::Test {
 protected:
  CancelTest() : engine_(&sim_, SmallEngine(flowserve::EngineRole::kColocated)) {}
  sim::Simulator sim_;
  flowserve::Engine engine_;
};

TEST_F(CancelTest, CancelUnknownRequestFails) {
  EXPECT_EQ(engine_.Cancel(42).code(), StatusCode::kNotFound);
}

TEST_F(CancelTest, CancelQueuedRequestFiresNoCallbacks) {
  bool any_callback = false;
  engine_.Submit(MakeRequest(1, 2048, 128),
                 [&](const flowserve::Sequence&) { any_callback = true; },
                 [&](const flowserve::Sequence&) { any_callback = true; });
  // Cancel while still in the tokenizer (no events have run).
  EXPECT_TRUE(engine_.Cancel(1).ok());
  sim_.Run();
  EXPECT_FALSE(any_callback);
  EXPECT_TRUE(engine_.idle());
  EXPECT_EQ(engine_.stats().cancelled, 1);
}

TEST_F(CancelTest, CancelMidPrefillReleasesKv) {
  engine_.Submit(MakeRequest(1, 4096, 128), nullptr, nullptr);
  sim_.RunUntil(MsToNs(120));  // some chunks done, prefill ongoing
  EXPECT_GT(engine_.rtc().npu_blocks_used(), 0);
  ASSERT_TRUE(engine_.Cancel(1).ok());
  sim_.Run();
  EXPECT_TRUE(engine_.idle());
  // No cached entry was preserved for the cancelled request.
  EXPECT_EQ(engine_.rtc().npu_blocks_used(), 0);
}

TEST_F(CancelTest, CancelMidDecodeLeavesOthersRunning) {
  int completed = 0;
  engine_.Submit(MakeRequest(1, 512, 512), nullptr,
                 [&](const flowserve::Sequence&) { ++completed; });
  engine_.Submit(MakeRequest(2, 512, 64, 30000), nullptr,
                 [&](const flowserve::Sequence&) { ++completed; });
  sim_.RunUntil(SToNs(1.0));  // both decoding
  ASSERT_TRUE(engine_.Cancel(1).ok());
  sim_.Run();
  EXPECT_EQ(completed, 1);  // only request 2 finished
  EXPECT_TRUE(engine_.idle());
}

TEST_F(CancelTest, CancelDuringPopulateWait) {
  // Build a cached entry, demote it, then cancel a request mid-populate.
  auto first = MakeRequest(1, 2048, 2);
  bool done = false;
  engine_.Submit(first, nullptr, [&](const flowserve::Sequence&) { done = true; });
  sim_.Run();
  ASSERT_TRUE(done);
  auto& rtc = engine_.rtc();
  auto info = rtc.MatchByPrefixToken(first.prompt);
  ASSERT_TRUE(info.hit());
  rtc.Acquire(info.blocks);
  rtc.Copy(info.blocks, rtc::Tier::kDram, nullptr);
  sim_.Run();
  rtc.Free(info.blocks);
  ASSERT_TRUE(rtc.EnsureNpuFree(rtc.config().pool.npu_capacity).ok());  // force demote

  // Slow transfers so the populate window is wide.
  engine_.SetRtcTransferFn([this](rtc::Tier, rtc::Tier, Bytes, std::function<void()> cb) {
    sim_.ScheduleAfter(SToNs(5), std::move(cb));
  });
  auto second = MakeRequest(2, 2048, 4);
  bool second_done = false;
  engine_.Submit(second, nullptr, [&](const flowserve::Sequence&) { second_done = true; });
  sim_.RunUntil(sim_.Now() + MsToNs(100));  // inside the populate
  ASSERT_TRUE(engine_.Cancel(2).ok());
  sim_.Run();
  EXPECT_FALSE(second_done);
  EXPECT_TRUE(engine_.idle());
}

TEST_F(CancelTest, AbortDropsEverything) {
  int callbacks = 0;
  for (int i = 0; i < 6; ++i) {
    engine_.Submit(MakeRequest(static_cast<workload::RequestId>(i + 1), 1024, 256,
                               static_cast<TokenId>(100 + 999 * i)),
                   nullptr, [&](const flowserve::Sequence&) { ++callbacks; });
  }
  sim_.RunUntil(MsToNs(300));
  size_t dropped = engine_.Abort();
  EXPECT_EQ(dropped, 6u);
  sim_.Run();
  EXPECT_EQ(callbacks, 0);
  EXPECT_TRUE(engine_.idle());
  EXPECT_EQ(engine_.rtc().npu_blocks_used(), 0);
  EXPECT_EQ(engine_.stats().aborted, 6);
}

TEST_F(CancelTest, EngineUsableAfterAbort) {
  engine_.Submit(MakeRequest(1, 1024, 128), nullptr, nullptr);
  sim_.RunUntil(MsToNs(100));
  engine_.Abort();
  bool done = false;
  engine_.Submit(MakeRequest(2, 512, 16, 40000), nullptr,
                 [&](const flowserve::Sequence&) { done = true; });
  sim_.Run();
  EXPECT_TRUE(done);
}

// ---------------- Platform fault tolerance ----------------

class FaultToleranceTest : public ::testing::Test {
 protected:
  FaultToleranceTest() {
    hw::ClusterConfig cc;
    cc.num_machines = 4;
    cluster_ = std::make_unique<hw::Cluster>(&sim_, cc);
    transfer_ = std::make_unique<distflow::TransferEngine>(&sim_, cluster_.get(),
                                                           distflow::DistFlowConfig{});
    manager_ = std::make_unique<serving::ClusterManager>(&sim_, cluster_.get(),
                                                         transfer_.get());
    serving::JeConfig config;
    config.policy = serving::SchedulingPolicy::kLoadOnly;
    je_ = std::make_unique<serving::JobExecutor>(&sim_, config, serving::PdHeatmap::Default(),
                                                 serving::MakeOraclePredictor());
    manager_->AddFailureHandler([this](serving::TeId id) { je_->OnTeFailure(id); });
  }

  serving::TaskExecutor* AddTe(flowserve::EngineRole role) {
    auto te = manager_->CreateReadyTe(SmallEngine(role)).value();
    switch (role) {
      case flowserve::EngineRole::kColocated:
        je_->AddColocatedTe(te);
        break;
      case flowserve::EngineRole::kPrefillOnly:
        je_->AddPrefillTe(te);
        break;
      case flowserve::EngineRole::kDecodeOnly:
        je_->AddDecodeTe(te);
        break;
    }
    endpoints_.push_back(te->id());
    return te;
  }

  void Link() {
    ASSERT_TRUE(transfer_->LinkCluster(endpoints_, nullptr).ok());
    sim_.Run();
  }

  sim::Simulator sim_;
  std::unique_ptr<hw::Cluster> cluster_;
  std::unique_ptr<distflow::TransferEngine> transfer_;
  std::unique_ptr<serving::ClusterManager> manager_;
  std::unique_ptr<serving::JobExecutor> je_;
  std::vector<distflow::EndpointId> endpoints_;
};

TEST_F(FaultToleranceTest, KillUnknownTeFails) {
  EXPECT_FALSE(manager_->KillTe(99).ok());
}

TEST_F(FaultToleranceTest, ColocatedTeFailureRedispatchesInflightJobs) {
  auto* te1 = AddTe(flowserve::EngineRole::kColocated);
  auto* te2 = AddTe(flowserve::EngineRole::kColocated);
  Link();
  std::set<workload::RequestId> completed;
  for (int i = 0; i < 8; ++i) {
    auto spec = MakeRequest(static_cast<workload::RequestId>(i + 1), 1024, 1024,
                            static_cast<TokenId>(100 + 777 * i));
    je_->HandleRequest(spec, {nullptr, [&completed, id = spec.id](const flowserve::Sequence&) {
      completed.insert(id);
    }, nullptr});
  }
  sim_.RunUntil(MsToNs(200));  // work in flight on both TEs
  auto dropped = manager_->KillTe(te1->id());
  ASSERT_TRUE(dropped.ok());
  EXPECT_GT(*dropped, 0u);
  sim_.Run();
  // Every request completed despite the crash (retried on te2).
  EXPECT_EQ(completed.size(), 8u);
  EXPECT_GT(je_->stats().retries, 0);
  EXPECT_EQ(je_->stats().failed_tes_handled, 1);
  EXPECT_GT(te2->engine().stats().completed, 0);
  EXPECT_EQ(te1->state(), serving::TeState::kFailed);
}

TEST_F(FaultToleranceTest, DecodeTeFailureRetriesDisaggregatedJobs) {
  AddTe(flowserve::EngineRole::kPrefillOnly);
  auto* decode1 = AddTe(flowserve::EngineRole::kDecodeOnly);
  AddTe(flowserve::EngineRole::kDecodeOnly);
  Link();
  std::set<workload::RequestId> completed;
  for (int i = 0; i < 6; ++i) {
    auto spec = MakeRequest(static_cast<workload::RequestId>(i + 1), 2048, 2048,
                            static_cast<TokenId>(100 + 555 * i));
    je_->HandleRequest(spec, {nullptr, [&completed, id = spec.id](const flowserve::Sequence&) {
      completed.insert(id);
    }, nullptr});
  }
  sim_.RunUntil(SToNs(1));  // some decodes running on both decode TEs
  ASSERT_TRUE(manager_->KillTe(decode1->id()).ok());
  sim_.Run();
  EXPECT_EQ(completed.size(), 6u);
  EXPECT_GT(je_->stats().retries, 0);
}

TEST_F(FaultToleranceTest, PrefillTeFailureRetriesViaSurvivingPair) {
  auto* prefill1 = AddTe(flowserve::EngineRole::kPrefillOnly);
  AddTe(flowserve::EngineRole::kPrefillOnly);
  AddTe(flowserve::EngineRole::kDecodeOnly);
  Link();
  std::set<workload::RequestId> completed;
  for (int i = 0; i < 6; ++i) {
    auto spec = MakeRequest(static_cast<workload::RequestId>(i + 1), 4096, 32,
                            static_cast<TokenId>(100 + 311 * i));
    je_->HandleRequest(spec, {nullptr, [&completed, id = spec.id](const flowserve::Sequence&) {
      completed.insert(id);
    }, nullptr});
  }
  sim_.RunUntil(MsToNs(200));  // prefills in flight
  ASSERT_TRUE(manager_->KillTe(prefill1->id()).ok());
  sim_.Run();
  EXPECT_EQ(completed.size(), 6u);
}

TEST_F(FaultToleranceTest, FailedJobsMarkedInLedger) {
  auto* te1 = AddTe(flowserve::EngineRole::kColocated);
  AddTe(flowserve::EngineRole::kColocated);
  Link();
  for (int i = 0; i < 4; ++i) {
    je_->HandleRequest(MakeRequest(static_cast<workload::RequestId>(i + 1), 1024, 256,
                                   static_cast<TokenId>(100 + 131 * i)), {nullptr, nullptr, nullptr});
  }
  sim_.RunUntil(MsToNs(400));
  ASSERT_TRUE(manager_->KillTe(te1->id()).ok());
  sim_.Run();
  int failed = 0;
  int completed = 0;
  for (const auto& job : je_->jobs()) {
    if (job.state == serving::JobState::kFailed) {
      ++failed;
    }
    if (job.state == serving::JobState::kCompleted) {
      ++completed;
    }
  }
  EXPECT_GT(failed, 0);
  // Retries created fresh (completed) jobs for the failed ones.
  EXPECT_EQ(completed, 4 + failed > 4 ? completed : completed);
  EXPECT_GE(completed, 4);
}

TEST_F(FaultToleranceTest, DoubleKillFails) {
  auto* te1 = AddTe(flowserve::EngineRole::kColocated);
  AddTe(flowserve::EngineRole::kColocated);
  Link();
  ASSERT_TRUE(manager_->KillTe(te1->id()).ok());
  EXPECT_EQ(manager_->KillTe(te1->id()).status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(FaultToleranceTest, NpusReleasedAfterKill) {
  auto* te1 = AddTe(flowserve::EngineRole::kColocated);
  Link();
  ASSERT_TRUE(manager_->KillTe(te1->id()).ok());
  // Freed capacity is reusable immediately.
  EXPECT_TRUE(manager_->CreateReadyTe(SmallEngine(flowserve::EngineRole::kColocated)).ok());
}

// ---------------- Deferred detection (CrashTe) ----------------

TEST_F(FaultToleranceTest, NpuCrashDetectionLandsOnHeartbeatGrid) {
  auto* te1 = AddTe(flowserve::EngineRole::kColocated);
  AddTe(flowserve::EngineRole::kColocated);
  Link();
  std::set<workload::RequestId> completed;
  for (int i = 0; i < 8; ++i) {
    auto spec = MakeRequest(static_cast<workload::RequestId>(i + 1), 1024, 1024,
                            static_cast<TokenId>(100 + 777 * i));
    je_->HandleRequest(spec, {nullptr, [&completed, id = spec.id](const flowserve::Sequence&) {
      completed.insert(id);
    }, nullptr});
  }
  sim_.RunUntil(MsToNs(200));
  ASSERT_TRUE(manager_->CrashTe(te1->id(), serving::CrashKind::kNpu).ok());
  // The TE is dead immediately, but the platform has not noticed yet.
  EXPECT_EQ(te1->state(), serving::TeState::kFailed);
  EXPECT_EQ(je_->stats().failed_tes_handled, 0);
  // Default detection: 3 missed 500ms heartbeats from t=200ms lands at
  // 1700ms, quantized up to the 2000ms heartbeat tick.
  sim_.RunUntil(MsToNs(1999));
  EXPECT_EQ(manager_->stats().detections, 0);
  sim_.RunUntil(MsToNs(2001));
  EXPECT_EQ(manager_->stats().detections, 1);
  EXPECT_EQ(je_->stats().failed_tes_handled, 1);
  EXPECT_DOUBLE_EQ(manager_->stats().mean_mttr_ms(), 1800.0);
  sim_.Run();
  EXPECT_EQ(completed.size(), 8u);  // lost work re-dispatched after detection
}

TEST_F(FaultToleranceTest, ShellCrashDetectedFasterThanHeartbeatLapse) {
  auto* te1 = AddTe(flowserve::EngineRole::kColocated);
  AddTe(flowserve::EngineRole::kColocated);
  Link();
  sim_.RunUntil(MsToNs(200));
  ASSERT_TRUE(manager_->CrashTe(te1->id(), serving::CrashKind::kTeShell).ok());
  sim_.RunUntil(MsToNs(299));
  EXPECT_EQ(manager_->stats().detections, 0);
  sim_.RunUntil(MsToNs(301));  // pod-runtime signal after 100ms
  EXPECT_EQ(manager_->stats().detections, 1);
  EXPECT_DOUBLE_EQ(manager_->stats().mean_mttr_ms(), 100.0);
}

TEST_F(FaultToleranceTest, DetectionLatencyIsConfigurable) {
  auto* te1 = AddTe(flowserve::EngineRole::kColocated);
  AddTe(flowserve::EngineRole::kColocated);
  Link();
  serving::FaultDetectionConfig detection;
  detection.heartbeat_interval = MsToNs(100);
  detection.missed_heartbeats = 2;
  manager_->SetFaultDetection(detection);
  sim_.RunUntil(MsToNs(50));
  ASSERT_TRUE(manager_->CrashTe(te1->id(), serving::CrashKind::kNpu).ok());
  // 2 x 100ms from t=50ms lands at 250ms, quantized up to 300ms.
  sim_.RunUntil(MsToNs(299));
  EXPECT_EQ(manager_->stats().detections, 0);
  sim_.RunUntil(MsToNs(301));
  EXPECT_EQ(manager_->stats().detections, 1);
}

TEST_F(FaultToleranceTest, CrashAccountsLostKvTokens) {
  auto* te1 = AddTe(flowserve::EngineRole::kColocated);
  AddTe(flowserve::EngineRole::kColocated);
  Link();
  for (int i = 0; i < 4; ++i) {
    je_->HandleRequest(MakeRequest(static_cast<workload::RequestId>(i + 1), 2048, 1024,
                                   static_cast<TokenId>(100 + 991 * i)),
                       {nullptr, nullptr, nullptr});
  }
  sim_.RunUntil(MsToNs(400));  // KV context built up on both TEs
  ASSERT_TRUE(manager_->CrashTe(te1->id()).ok());
  EXPECT_GT(manager_->stats().lost_requests, 0);
  EXPECT_GT(manager_->stats().lost_kv_tokens, 0);
  sim_.Run();
}

TEST_F(FaultToleranceTest, ReplacementPolicyRestoresCapacityAndRecordsMttr) {
  auto* te1 = AddTe(flowserve::EngineRole::kColocated);
  AddTe(flowserve::EngineRole::kColocated);
  Link();
  serving::TaskExecutor* replacement = nullptr;
  serving::ScaleRequest request;
  request.engine = SmallEngine(flowserve::EngineRole::kColocated);
  manager_->SetReplacementPolicy(request, [&](serving::TaskExecutor* te) {
    replacement = te;
    je_->AddColocatedTe(te);
  });
  std::set<workload::RequestId> completed;
  for (int i = 0; i < 8; ++i) {
    auto spec = MakeRequest(static_cast<workload::RequestId>(i + 1), 1024, 1024,
                            static_cast<TokenId>(100 + 777 * i));
    je_->HandleRequest(spec, {nullptr, [&completed, id = spec.id](const flowserve::Sequence&) {
      completed.insert(id);
    }, nullptr});
  }
  sim_.RunUntil(MsToNs(200));
  ASSERT_TRUE(manager_->CrashTe(te1->id()).ok());
  sim_.Run();
  EXPECT_EQ(manager_->stats().replacements, 1);
  ASSERT_NE(replacement, nullptr);
  EXPECT_TRUE(replacement->ready());
  // MTTR spans crash -> replacement ready, so it exceeds detection latency.
  EXPECT_GT(manager_->stats().mean_mttr_ms(), 1800.0);
  EXPECT_EQ(completed.size(), 8u);
}

TEST_F(FaultToleranceTest, RetryBudgetExhaustionDeliversAborted) {
  std::vector<serving::TaskExecutor*> tes;
  for (int i = 0; i < 6; ++i) {
    tes.push_back(AddTe(flowserve::EngineRole::kColocated));
  }
  Link();
  int completions = 0;
  int errors = 0;
  Status seen = Status::Ok();
  je_->HandleRequest(MakeRequest(1, 512, 40000),
                     {nullptr, [&](const flowserve::Sequence&) { ++completions; },
                      [&](const Status& e) {
                        ++errors;
                        seen = e;
                      }});
  sim_.RunUntil(MsToNs(50));
  // Keep killing whichever TE holds the request until the retry budget runs
  // out; capacity remains available throughout, so the terminal status is
  // kAborted (budget), not kUnavailable (no capacity).
  auto holder = [&]() -> serving::TaskExecutor* {
    for (auto* te : tes) {
      if (te->ready() && !te->engine().idle()) {
        return te;
      }
    }
    return nullptr;
  };
  for (int round = 0; round < 6; ++round) {
    serving::TaskExecutor* h = holder();
    if (h == nullptr) {
      break;
    }
    ASSERT_TRUE(manager_->KillTe(h->id()).ok());
    sim_.RunUntil(sim_.Now() + MsToNs(50));
  }
  EXPECT_EQ(completions, 0);
  EXPECT_EQ(errors, 1);
  EXPECT_EQ(seen.code(), StatusCode::kAborted);
  EXPECT_EQ(je_->stats().retries, 3);  // default JeConfig::max_retries
  EXPECT_EQ(je_->stats().errors, 1);
}

// ---------------- Fault injector ----------------

TEST_F(FaultToleranceTest, SlowNodeMultiplierAppliesAndRestores) {
  auto* te = AddTe(flowserve::EngineRole::kColocated);
  Link();
  faults::FaultInjector injector(&sim_, manager_.get(), /*seed=*/7);
  faults::FaultEvent event;
  event.time = sim_.Now();
  event.kind = faults::FaultKind::kSlowNode;
  event.target = 0;
  event.factor = 2.0;
  event.duration = SToNs(1);
  injector.Schedule(event);
  sim_.RunUntil(MsToNs(1));
  EXPECT_DOUBLE_EQ(te->engine().step_time_multiplier(), 2.0);
  sim_.RunUntil(SToNs(1.1));
  EXPECT_DOUBLE_EQ(te->engine().step_time_multiplier(), 1.0);
  EXPECT_EQ(injector.stats().slow_nodes, 1);
  EXPECT_EQ(injector.stats().restores, 1);
}

TEST_F(FaultToleranceTest, StragglerStretchesCompletionTime) {
  auto run = [&](double factor) {
    sim::Simulator sim;
    flowserve::Engine engine(&sim, SmallEngine(flowserve::EngineRole::kColocated));
    engine.SetStepTimeMultiplier(factor);
    TimeNs done = 0;
    engine.Submit(MakeRequest(1, 1024, 256), nullptr,
                  [&](const flowserve::Sequence& seq) { done = seq.finish_time; });
    sim.Run();
    return done;
  };
  TimeNs base = run(1.0);
  TimeNs slow = run(3.0);
  EXPECT_GT(base, 0);
  EXPECT_GT(slow, 2 * base);  // ~3x modulo rounding
}

TEST_F(FaultToleranceTest, LinkDegradeScalesBandwidthAndRestores) {
  AddTe(flowserve::EngineRole::kColocated);
  Link();
  faults::FaultInjector injector(&sim_, manager_.get(), /*seed=*/7);
  faults::FaultEvent event;
  event.time = sim_.Now();
  event.kind = faults::FaultKind::kLinkDegrade;
  event.target = 0;  // machine 0
  event.factor = 0.25;
  event.duration = SToNs(2);
  injector.Schedule(event);
  sim_.RunUntil(MsToNs(1));
  EXPECT_DOUBLE_EQ(cluster_->hccs_link(0)->bandwidth_scale(), 0.25);
  EXPECT_DOUBLE_EQ(cluster_->roce_link(0)->bandwidth_scale(), 0.25);
  sim_.RunUntil(SToNs(2.1));
  EXPECT_DOUBLE_EQ(cluster_->hccs_link(0)->bandwidth_scale(), 1.0);
  EXPECT_DOUBLE_EQ(cluster_->roce_link(0)->bandwidth_scale(), 1.0);
  EXPECT_EQ(injector.stats().link_degrades, 1);
  EXPECT_EQ(injector.stats().restores, 1);
}

TEST_F(FaultToleranceTest, CrashWithNoLiveTargetIsSkipped) {
  faults::FaultInjector injector(&sim_, manager_.get(), /*seed=*/7);
  faults::FaultEvent event;
  event.time = sim_.Now();
  event.kind = faults::FaultKind::kNpuCrash;
  injector.Schedule(event);
  sim_.Run();
  EXPECT_EQ(injector.stats().injected, 1);
  EXPECT_EQ(injector.stats().skipped, 1);
  EXPECT_EQ(manager_->stats().crashes, 0);
}

TEST_F(FaultToleranceTest, CmCrashEventTakesControlLeaderDown) {
  AddTe(flowserve::EngineRole::kColocated);
  Link();
  faults::FaultInjector injector(&sim_, manager_.get(), /*seed=*/7);
  faults::FaultEvent event;
  event.time = sim_.Now();
  event.kind = faults::FaultKind::kCmCrash;
  injector.Schedule(event);
  event.time = sim_.Now() + SToNs(1);  // second crash: leader already down
  injector.Schedule(event);
  sim_.Run();
  EXPECT_EQ(injector.stats().cm_crashes, 1);
  EXPECT_EQ(injector.stats().skipped, 1);
  EXPECT_EQ(manager_->stats().cm_crashes, 1);
  EXPECT_FALSE(manager_->leader_up());  // degenerate log: nobody takes over
}

TEST_F(FaultToleranceTest, JeCrashEventNeedsARegisteredExecutor) {
  AddTe(flowserve::EngineRole::kColocated);
  Link();
  faults::FaultInjector injector(&sim_, manager_.get(), /*seed=*/7);
  faults::FaultEvent event;
  event.time = sim_.Now();
  event.kind = faults::FaultKind::kJeCrash;
  injector.Schedule(event);  // no JE registered yet: skipped
  sim_.Run();
  EXPECT_EQ(injector.stats().je_crashes, 0);
  EXPECT_EQ(injector.stats().skipped, 1);

  injector.RegisterJobExecutor(je_.get());
  event.time = sim_.Now();
  event.target = 0;
  injector.Schedule(event);
  sim_.Run();
  EXPECT_EQ(injector.stats().je_crashes, 1);
  EXPECT_EQ(je_->stats().je_crashes, 1);
  EXPECT_FALSE(je_->leader_up());
}

// ---------------- Heterogeneous-cluster fault tolerance ----------------

// A Gen1+Gen2 cluster at one TE per machine (tp8): cost-aware placement fills
// the cheap Gen1 machines first, so the third and fourth TEs overflow onto
// Gen2 — giving the fleet one TE per machine across both generations.
class HeteroFaultTest : public ::testing::Test {
 protected:
  HeteroFaultTest() {
    hw::ClusterConfig cc;
    cc.num_machines = 4;
    cc.machine_specs = hw::ParseNpuMix("gen1:2,gen2:2").value();
    cluster_ = std::make_unique<hw::Cluster>(&sim_, cc);
    transfer_ = std::make_unique<distflow::TransferEngine>(&sim_, cluster_.get(),
                                                           distflow::DistFlowConfig{});
    manager_ = std::make_unique<serving::ClusterManager>(&sim_, cluster_.get(),
                                                         transfer_.get());
    serving::JeConfig config;
    config.policy = serving::SchedulingPolicy::kLoadOnly;
    je_ = std::make_unique<serving::JobExecutor>(&sim_, config, serving::PdHeatmap::Default(),
                                                 serving::MakeOraclePredictor());
    manager_->AddFailureHandler([this](serving::TeId id) { je_->OnTeFailure(id); });
  }

  serving::TaskExecutor* AddColocatedTe() {
    flowserve::EngineConfig config = SmallEngine(flowserve::EngineRole::kColocated);
    config.parallelism = {8, 1, 1};  // one TE per machine
    config.npu_spec_from_placement = true;
    auto te = manager_->CreateReadyTe(config).value();
    je_->AddColocatedTe(te);
    endpoints_.push_back(te->id());
    return te;
  }

  void Link() {
    ASSERT_TRUE(transfer_->LinkCluster(endpoints_, nullptr).ok());
    sim_.Run();
  }

  std::string GenOf(serving::TaskExecutor* te) const {
    return manager_->TeSpec(te->id()).name;
  }

  sim::Simulator sim_;
  std::unique_ptr<hw::Cluster> cluster_;
  std::unique_ptr<distflow::TransferEngine> transfer_;
  std::unique_ptr<serving::ClusterManager> manager_;
  std::unique_ptr<serving::JobExecutor> je_;
  std::vector<distflow::EndpointId> endpoints_;
};

TEST_F(HeteroFaultTest, CrashOfOnlyGen2TeRedispatchesAcrossGenerations) {
  auto* gen1_a = AddColocatedTe();
  auto* gen1_b = AddColocatedTe();
  auto* gen2 = AddColocatedTe();
  Link();
  // Placement preferred the cheap generation, overflowing the third TE.
  ASSERT_EQ(GenOf(gen1_a), hw::NpuSpec::Gen1().name);
  ASSERT_EQ(GenOf(gen1_b), hw::NpuSpec::Gen1().name);
  ASSERT_EQ(GenOf(gen2), hw::NpuSpec::Gen2().name);

  std::set<workload::RequestId> completed;
  for (int i = 0; i < 9; ++i) {
    auto spec = MakeRequest(static_cast<workload::RequestId>(i + 1), 1024, 1024,
                            static_cast<TokenId>(100 + 777 * i));
    je_->HandleRequest(spec, {nullptr, [&completed, id = spec.id](const flowserve::Sequence&) {
      completed.insert(id);
    }, nullptr});
  }
  sim_.RunUntil(MsToNs(200));  // load spread over all three TEs
  auto dropped = manager_->KillTe(gen2->id());
  ASSERT_TRUE(dropped.ok());
  EXPECT_GT(*dropped, 0u);  // the Gen2 TE really held in-flight work
  sim_.Run();
  // Everything the dead Gen2 TE carried re-dispatched onto the surviving
  // Gen1 TEs — cross-generation recovery, no stranded requests.
  EXPECT_EQ(completed.size(), 9u);
  EXPECT_GT(je_->stats().retries, 0);
  EXPECT_EQ(je_->stats().failed_tes_handled, 1);
  EXPECT_EQ(gen2->state(), serving::TeState::kFailed);
  EXPECT_GT(gen1_a->engine().stats().completed + gen1_b->engine().stats().completed, 0);
}

TEST_F(HeteroFaultTest, CrashesOnBothGenerationsConserveRequests) {
  auto* gen1_a = AddColocatedTe();
  auto* gen1_b = AddColocatedTe();
  auto* gen2_a = AddColocatedTe();
  auto* gen2_b = AddColocatedTe();
  Link();
  ASSERT_EQ(GenOf(gen1_b), hw::NpuSpec::Gen1().name);
  ASSERT_EQ(GenOf(gen2_b), hw::NpuSpec::Gen2().name);

  std::set<workload::RequestId> completed;
  for (int i = 0; i < 12; ++i) {
    auto spec = MakeRequest(static_cast<workload::RequestId>(i + 1), 1024, 512,
                            static_cast<TokenId>(100 + 311 * i));
    je_->HandleRequest(spec, {nullptr, [&completed, id = spec.id](const flowserve::Sequence&) {
      completed.insert(id);
    }, nullptr});
  }
  sim_.RunUntil(MsToNs(150));
  ASSERT_TRUE(manager_->KillTe(gen1_a->id()).ok());  // a Gen1 victim...
  sim_.RunUntil(MsToNs(350));
  ASSERT_TRUE(manager_->KillTe(gen2_a->id()).ok());  // ...and a Gen2 victim
  sim_.Run();
  EXPECT_EQ(completed.size(), 12u);
  EXPECT_EQ(je_->stats().failed_tes_handled, 2);
  EXPECT_GT(gen1_b->engine().stats().completed + gen2_b->engine().stats().completed, 0);
}

TEST(FaultScheduleTest, ParsesFullGrammar) {
  auto result = faults::FaultInjector::ParseSchedule(
      "npu@5;link@10:0.25x20;slow@30:3x10#2;shell@1.5;cm@12;je@7:1");
  ASSERT_TRUE(result.ok());
  const auto& events = *result;
  ASSERT_EQ(events.size(), 6u);
  EXPECT_EQ(events[0].kind, faults::FaultKind::kNpuCrash);
  EXPECT_EQ(events[0].time, SToNs(5));
  EXPECT_EQ(events[0].target, -1);
  EXPECT_EQ(events[1].kind, faults::FaultKind::kLinkDegrade);
  EXPECT_DOUBLE_EQ(events[1].factor, 0.25);
  EXPECT_EQ(events[1].duration, SToNs(20));
  EXPECT_EQ(events[2].kind, faults::FaultKind::kSlowNode);
  EXPECT_DOUBLE_EQ(events[2].factor, 3.0);
  EXPECT_EQ(events[2].duration, SToNs(10));
  EXPECT_EQ(events[2].target, 2);
  EXPECT_EQ(events[3].kind, faults::FaultKind::kTeShellCrash);
  EXPECT_EQ(events[3].time, SToNs(1.5));
  EXPECT_EQ(events[4].kind, faults::FaultKind::kCmCrash);
  EXPECT_EQ(events[4].time, SToNs(12));
  EXPECT_EQ(events[4].target, -1);
  EXPECT_EQ(events[4].duration, 0);  // permanent: recovery is the log's failover
  EXPECT_EQ(events[5].kind, faults::FaultKind::kJeCrash);
  EXPECT_EQ(events[5].time, SToNs(7));
  EXPECT_EQ(events[5].target, 1);  // ':' field is the JE ordinal
}

TEST(FaultScheduleTest, RejectsMalformedSpecs) {
  EXPECT_FALSE(faults::FaultInjector::ParseSchedule("npu").ok());       // no '@'
  EXPECT_FALSE(faults::FaultInjector::ParseSchedule("meteor@5").ok());  // unknown kind
  EXPECT_FALSE(faults::FaultInjector::ParseSchedule("npu@").ok());      // missing time
  EXPECT_FALSE(faults::FaultInjector::ParseSchedule("npu@-3").ok());    // negative time
  EXPECT_FALSE(faults::FaultInjector::ParseSchedule("link@10:1.5").ok());  // factor > 1
  EXPECT_FALSE(faults::FaultInjector::ParseSchedule("slow@5:0.5").ok());   // factor < 1
  EXPECT_FALSE(faults::FaultInjector::ParseSchedule("cm@5:2").ok());    // cm takes no ':'
  EXPECT_FALSE(faults::FaultInjector::ParseSchedule("cm@5x10").ok());   // crash is permanent
  EXPECT_FALSE(faults::FaultInjector::ParseSchedule("je@5x10").ok());   // crash is permanent
  EXPECT_FALSE(faults::FaultInjector::ParseSchedule("je@5:bad").ok());  // ordinal not a number
  EXPECT_FALSE(faults::FaultInjector::ParseSchedule("je@5:-1").ok());   // negative ordinal
}

TEST(FaultPlanTest, SameSeedSamePlan) {
  faults::FaultPlanConfig config;
  config.count = 16;
  auto a = faults::FaultInjector::GeneratePlan(99, config);
  auto b = faults::FaultInjector::GeneratePlan(99, config);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].time, b[i].time);
    EXPECT_EQ(a[i].kind, b[i].kind);
    EXPECT_EQ(a[i].target, b[i].target);
    EXPECT_DOUBLE_EQ(a[i].factor, b[i].factor);
    EXPECT_EQ(a[i].duration, b[i].duration);
  }
  // Sorted by time, inside the window.
  for (size_t i = 1; i < a.size(); ++i) {
    EXPECT_LE(a[i - 1].time, a[i].time);
  }
  for (const auto& event : a) {
    EXPECT_GE(event.time, config.window_start);
    EXPECT_LE(event.time, config.window_end);
  }
  auto c = faults::FaultInjector::GeneratePlan(100, config);
  bool differs = false;
  for (size_t i = 0; i < std::min(a.size(), c.size()); ++i) {
    differs = differs || a[i].time != c[i].time || a[i].kind != c[i].kind;
  }
  EXPECT_TRUE(differs);
}

// ---------------- Chaos property tests ----------------
//
// A full stack (Frontend -> JE -> 3 TEs, heartbeat detection, replacement
// scale-ups) driven through a chaos plan. The acceptance properties:
//   conservation — every request terminates in exactly ONE of
//                  on_complete / on_error;
//   determinism  — the same fault seed replays bit-for-bit;
//   isolation    — with faults disabled, the seed is irrelevant.

struct ChaosOutcome {
  std::vector<workload::RequestId> completed;  // in completion order
  std::vector<workload::RequestId> errored;    // in error order
  int64_t double_terminated = 0;
  int64_t crashes = 0;
  int64_t replacements = 0;
  int64_t sheds = 0;  // engine-level policy sheds (slo chaos variant)
  int64_t drains_started = 0;  // autoscaler chaos variant
  int64_t drains_aborted = 0;
  int64_t drain_timeouts = 0;
  int64_t hedges = 0;  // hedged chaos variant
  int64_t hedge_cancels = 0;
  int64_t ejections = 0;
  int64_t cm_crashes = 0;  // control-plane chaos variant
  int64_t cm_failovers = 0;
  int64_t je_crashes = 0;
  int64_t je_failovers = 0;
  TimeNs end_time = 0;

  bool operator==(const ChaosOutcome& other) const {
    return completed == other.completed && errored == other.errored &&
           double_terminated == other.double_terminated && crashes == other.crashes &&
           replacements == other.replacements && sheds == other.sheds &&
           drains_started == other.drains_started && drains_aborted == other.drains_aborted &&
           drain_timeouts == other.drain_timeouts && hedges == other.hedges &&
           hedge_cancels == other.hedge_cancels && ejections == other.ejections &&
           cm_crashes == other.cm_crashes && cm_failovers == other.cm_failovers &&
           je_crashes == other.je_crashes && je_failovers == other.je_failovers &&
           end_time == other.end_time;
  }
};

// `slo_deadlines` runs the same chaos plan with the engines on the "slo"
// scheduling policy and a tight deadline on every other request, so the
// conservation property additionally covers deadline sheds racing TE crashes.
// `autoscale` additionally runs a churny graceful-drain autoscaler over the
// colocated group, so drains race the chaos plan's crashes and the drain
// timeout's force-kill path.
// `ctrl_chaos` puts the CM and the JE on a shared replicated control log and
// adds cm/je leader crashes to the chaos plan, so leader outages and
// log-replay takeovers race everything above.
ChaosOutcome RunChaos(uint64_t fault_seed, bool enable_faults, bool slo_deadlines = false,
                      bool autoscale = false, bool ctrl_chaos = false) {
  constexpr int kRequests = 40;
  sim::Simulator sim;
  hw::ClusterConfig cc;
  cc.num_machines = 4;
  hw::Cluster cluster(&sim, cc);
  distflow::TransferEngine transfer(&sim, &cluster, distflow::DistFlowConfig{});
  ctrl::CtrlConfig ctrl_config;
  if (ctrl_chaos) {
    ctrl_config.replicas = 3;
    ctrl_config.quorum = 2;
    ctrl_config.replication_latency = MsToNs(1);
    ctrl_config.lease_duration = MsToNs(300);
  }
  ctrl::ControlLog ctrl_log(&sim, ctrl_config);
  serving::ClusterManager manager(&sim, &cluster, &transfer, {}, {},
                                  ctrl_chaos ? &ctrl_log : nullptr);
  serving::JeConfig config;
  config.policy = serving::SchedulingPolicy::kLoadOnly;
  serving::JobExecutor je(&sim, config, serving::PdHeatmap::Default(),
                          serving::MakeOraclePredictor());
  if (ctrl_chaos) {
    je.AttachControl(&ctrl_log, &manager);  // also registers the TE failure handler
  }
  flowserve::EngineConfig engine_config = SmallEngine(flowserve::EngineRole::kColocated);
  if (slo_deadlines) {
    engine_config.sched.policy = "slo";
  }
  std::vector<serving::TaskExecutor*> tes;
  std::vector<distflow::EndpointId> endpoints;
  for (int i = 0; i < 3; ++i) {
    auto* te = manager.CreateReadyTe(engine_config).value();
    je.AddColocatedTe(te);
    tes.push_back(te);
    endpoints.push_back(te->id());
  }
  DS_CHECK_OK(transfer.LinkCluster(endpoints, nullptr));
  sim.Run();
  if (!ctrl_chaos) {
    manager.AddFailureHandler([&](serving::TeId id) { je.OnTeFailure(id); });
  }
  serving::ScaleRequest replacement;
  replacement.engine = engine_config;
  manager.SetReplacementPolicy(replacement, [&](serving::TaskExecutor* te) {
    je.AddColocatedTe(te);
    tes.push_back(te);
  });

  if (autoscale) {
    // Churny on purpose: sheds quickly when queues thin out, scales back up
    // under pressure, and force-kills drains that stall — maximizing the
    // window where a draining TE can be hit by a chaos crash.
    serving::AutoscalerConfig as;
    as.policy = "reactive";
    as.check_interval = MsToNs(250);
    as.scale_up_queue_depth = 4;
    as.scale_down_queue_depth = 2;
    as.min_tes = 1;
    as.max_tes = 3;
    as.graceful_drain = true;
    as.drain_timeout = SToNs(2);
    serving::ScaleRequest scale_request;
    scale_request.engine = engine_config;
    manager.StartAutoscaler(&je, as, scale_request);
  }

  serving::Frontend frontend(&sim);
  frontend.RegisterServingJe("tiny-1b", &je);

  faults::FaultInjector injector(&sim, &manager, fault_seed);
  if (ctrl_chaos) {
    injector.RegisterJobExecutor(&je);
  }
  if (enable_faults) {
    faults::FaultPlanConfig plan;
    plan.count = 6;
    plan.window_start = 0;
    plan.window_end = SToNs(10);
    if (ctrl_chaos) {
      plan.count = 8;
      plan.cm_crash_weight = 1.5;
      plan.je_crash_weight = 1.5;
    }
    injector.ScheduleAll(faults::FaultInjector::GeneratePlan(fault_seed, plan));
  }

  ChaosOutcome outcome;
  std::vector<int> terminations(kRequests + 1, 0);
  for (int i = 0; i < kRequests; ++i) {
    workload::RequestId id = static_cast<workload::RequestId>(i + 1);
    sim.ScheduleAt(MsToNs(200) * i, [&, id, i] {
      serving::ChatRequest request;
      request.model = "tiny-1b";
      request.spec = MakeRequest(id, 1024, 512, static_cast<TokenId>(100 + 37 * i));
      if (slo_deadlines && i % 2 == 0) {
        // Tight enough that some requests expire under load/crashes, loose
        // enough that some still finish: both termination paths get exercised.
        request.deadline = sim.Now() + MsToNs(1500);
      }
      serving::ResponseHandler handler;
      handler.on_complete = [&outcome, &terminations, id](const flowserve::Sequence&) {
        outcome.completed.push_back(id);
        if (++terminations[id] > 1) {
          ++outcome.double_terminated;
        }
      };
      handler.on_error = [&outcome, &terminations, id](const Status&) {
        outcome.errored.push_back(id);
        if (++terminations[id] > 1) {
          ++outcome.double_terminated;
        }
      };
      // A pre-dispatch rejection reports through the Status alone (the
      // handler never fires): count it as this request's one termination.
      Status status = frontend.ChatCompletion(std::move(request), std::move(handler));
      if (!status.ok()) {
        outcome.errored.push_back(id);
        if (++terminations[id] > 1) {
          ++outcome.double_terminated;
        }
      }
    });
  }
  if (autoscale) {
    sim.RunUntil(SToNs(60));
    manager.StopAutoscaler();
  }
  sim.Run();
  if (autoscale) {
    // Read after the final Run(): pending drain timeouts may still fire.
    const serving::AutoscalerStats& as_stats = manager.autoscaler()->stats();
    outcome.drains_started = as_stats.drains_started;
    outcome.drains_aborted = as_stats.drains_aborted;
    outcome.drain_timeouts = as_stats.drain_timeouts;
  }
  outcome.crashes = manager.stats().crashes;
  outcome.replacements = manager.stats().replacements;
  outcome.cm_crashes = manager.stats().cm_crashes;
  outcome.cm_failovers = manager.stats().cm_failovers;
  outcome.je_crashes = je.stats().je_crashes;
  outcome.je_failovers = je.stats().je_failovers;
  for (serving::TaskExecutor* te : tes) {
    outcome.sheds += te->engine().stats().shed;
  }
  outcome.end_time = sim.Now();
  // Frontend accounting stays conservative under churn.
  EXPECT_EQ(frontend.stats().requests,
            frontend.stats().chat_dispatched + frontend.stats().rejected_total());
  return outcome;
}

TEST(ChaosPropertyTest, EveryRequestTerminatesExactlyOnce) {
  for (uint64_t seed : {1ull, 7ull, 13ull, 42ull, 1234ull}) {
    ChaosOutcome outcome = RunChaos(seed, /*enable_faults=*/true);
    EXPECT_EQ(outcome.completed.size() + outcome.errored.size(), 40u)
        << "seed " << seed << " lost a request without on_error";
    EXPECT_EQ(outcome.double_terminated, 0) << "seed " << seed;
  }
}

TEST(ChaosPropertyTest, SameSeedReplaysBitForBit) {
  for (uint64_t seed : {7ull, 42ull}) {
    ChaosOutcome first = RunChaos(seed, /*enable_faults=*/true);
    ChaosOutcome second = RunChaos(seed, /*enable_faults=*/true);
    EXPECT_TRUE(first == second) << "seed " << seed << " diverged";
    EXPECT_GT(first.crashes + first.errored.size(), 0u) << "chaos plan was a no-op";
  }
}

TEST(ChaosPropertyTest, ShedsAndCrashesConserveRequests) {
  // Deadline sheds (slo policy) racing TE crashes must preserve the
  // exactly-once termination property, and must replay bit-for-bit.
  bool any_sheds = false;
  for (uint64_t seed : {1ull, 7ull, 42ull}) {
    ChaosOutcome outcome = RunChaos(seed, /*enable_faults=*/true, /*slo_deadlines=*/true);
    EXPECT_EQ(outcome.completed.size() + outcome.errored.size(), 40u)
        << "seed " << seed << " lost a request without on_error";
    EXPECT_EQ(outcome.double_terminated, 0) << "seed " << seed;
    // Every engine-level shed must have surfaced through on_error.
    EXPECT_LE(outcome.sheds, static_cast<int64_t>(outcome.errored.size())) << "seed " << seed;
    any_sheds = any_sheds || outcome.sheds > 0;

    ChaosOutcome replay = RunChaos(seed, /*enable_faults=*/true, /*slo_deadlines=*/true);
    EXPECT_TRUE(outcome == replay) << "seed " << seed << " diverged";
  }
  EXPECT_TRUE(any_sheds) << "deadlines were a no-op: nothing was shed";
}

TEST(ChaosPropertyTest, DrainingTesRacingCrashesConserveRequests) {
  // Graceful drains (and their force-kill timeouts) racing chaos crashes and
  // replacement scale-ups must preserve exactly-once termination, and the
  // whole tangle must replay bit-for-bit.
  bool any_drains = false;
  for (uint64_t seed : {1ull, 7ull, 13ull, 42ull}) {
    ChaosOutcome outcome =
        RunChaos(seed, /*enable_faults=*/true, /*slo_deadlines=*/false, /*autoscale=*/true);
    EXPECT_EQ(outcome.completed.size() + outcome.errored.size(), 40u)
        << "seed " << seed << " lost a request";
    EXPECT_EQ(outcome.double_terminated, 0) << "seed " << seed;
    any_drains = any_drains || outcome.drains_started > 0;

    ChaosOutcome replay =
        RunChaos(seed, /*enable_faults=*/true, /*slo_deadlines=*/false, /*autoscale=*/true);
    EXPECT_TRUE(outcome == replay) << "seed " << seed << " diverged";
  }
  EXPECT_TRUE(any_drains) << "the autoscaler never drained: the race was not exercised";
}

TEST(ChaosPropertyTest, ControlPlaneCrashesConserveRequestsAndReplay) {
  // CM and JE leader crashes (shared replicated log, log-replay takeover)
  // racing TE crashes, link flaps, and stragglers: exactly-once termination
  // and bit-identical replay must survive leader outages, and every injected
  // leader crash must eventually fail over (finite MTTR, no token loss).
  bool any_ctrl = false;
  for (uint64_t seed : {1ull, 7ull, 42ull}) {
    ChaosOutcome outcome = RunChaos(seed, /*enable_faults=*/true, /*slo_deadlines=*/false,
                                    /*autoscale=*/false, /*ctrl_chaos=*/true);
    EXPECT_EQ(outcome.completed.size() + outcome.errored.size(), 40u)
        << "seed " << seed << " lost a request across a leader outage";
    EXPECT_EQ(outcome.double_terminated, 0) << "seed " << seed;
    EXPECT_EQ(outcome.cm_failovers, outcome.cm_crashes)
        << "seed " << seed << " left a CM outage unrecovered";
    EXPECT_EQ(outcome.je_failovers, outcome.je_crashes)
        << "seed " << seed << " left a JE outage unrecovered";
    any_ctrl = any_ctrl || outcome.cm_crashes + outcome.je_crashes > 0;

    ChaosOutcome replay = RunChaos(seed, /*enable_faults=*/true, /*slo_deadlines=*/false,
                                   /*autoscale=*/false, /*ctrl_chaos=*/true);
    EXPECT_TRUE(outcome == replay) << "seed " << seed << " diverged";
  }
  EXPECT_TRUE(any_ctrl) << "no control-plane crash fired: the chaos mix was a no-op";
}

// Hedged requests racing TE crashes: two JE replicas behind a p2c frontend
// with hedging, outlier ejection, and a shared retry budget, driven through
// the same generated chaos plans. On top of exactly-once termination this
// pins engine-level token conservation — every sequence that entered an
// engine left it through exactly one of complete/cancel/abort/shed, so
// cancelled hedge losers release their tokens instead of leaking them.
ChaosOutcome RunHedgeChaos(uint64_t fault_seed) {
  constexpr int kRequests = 40;
  sim::Simulator sim;
  hw::ClusterConfig cc;
  cc.num_machines = 4;
  hw::Cluster cluster(&sim, cc);
  distflow::TransferEngine transfer(&sim, &cluster, distflow::DistFlowConfig{});
  serving::ClusterManager manager(&sim, &cluster, &transfer);
  serving::JeConfig config;
  config.policy = serving::SchedulingPolicy::kLoadOnly;
  flowserve::EngineConfig engine_config = SmallEngine(flowserve::EngineRole::kColocated);
  std::vector<std::unique_ptr<serving::JobExecutor>> jes;
  std::vector<serving::TaskExecutor*> tes;
  std::vector<distflow::EndpointId> endpoints;
  for (int i = 0; i < 2; ++i) {
    jes.push_back(std::make_unique<serving::JobExecutor>(
        &sim, config, serving::PdHeatmap::Default(), serving::MakeOraclePredictor()));
    for (int t = 0; t < 2; ++t) {
      auto* te = manager.CreateReadyTe(engine_config).value();
      jes[i]->AddColocatedTe(te);
      tes.push_back(te);
      endpoints.push_back(te->id());
    }
  }
  DS_CHECK_OK(transfer.LinkCluster(endpoints, nullptr));
  sim.Run();
  manager.AddFailureHandler([&](serving::TeId id) {
    for (auto& je : jes) {
      je->OnTeFailure(id);
    }
  });

  serving::RouteConfig route;
  route.policy = "p2c";
  route.seed = 5;
  route.hedge_floor = MsToNs(400);
  route.eject_consecutive_errors = 2;
  route.retry_budget = true;
  route.retry_floor = 6;
  serving::Frontend frontend(&sim, route);
  for (auto& je : jes) {
    frontend.RegisterServingJe("tiny-1b", je.get());
  }

  faults::FaultInjector injector(&sim, &manager, fault_seed);
  faults::FaultPlanConfig plan;
  plan.count = 6;
  plan.window_start = 0;
  plan.window_end = SToNs(10);
  injector.ScheduleAll(faults::FaultInjector::GeneratePlan(fault_seed, plan));

  ChaosOutcome outcome;
  std::vector<int> terminations(kRequests + 1, 0);
  for (int i = 0; i < kRequests; ++i) {
    workload::RequestId id = static_cast<workload::RequestId>(i + 1);
    sim.ScheduleAt(MsToNs(200) * i, [&, id, i] {
      serving::ChatRequest request;
      request.model = "tiny-1b";
      request.spec = MakeRequest(id, 1024, 512, static_cast<TokenId>(100 + 37 * i));
      serving::ResponseHandler handler;
      handler.on_complete = [&outcome, &terminations, id](const flowserve::Sequence&) {
        outcome.completed.push_back(id);
        if (++terminations[id] > 1) {
          ++outcome.double_terminated;
        }
      };
      handler.on_error = [&outcome, &terminations, id](const Status&) {
        outcome.errored.push_back(id);
        if (++terminations[id] > 1) {
          ++outcome.double_terminated;
        }
      };
      Status status = frontend.ChatCompletion(std::move(request), std::move(handler));
      if (!status.ok()) {
        outcome.errored.push_back(id);
        if (++terminations[id] > 1) {
          ++outcome.double_terminated;
        }
      }
    });
  }
  sim.Run();
  outcome.crashes = manager.stats().crashes;
  outcome.hedges = frontend.stats().hedges_launched;
  outcome.hedge_cancels = frontend.stats().hedge_cancels;
  outcome.ejections = frontend.stats().ejections;
  outcome.end_time = sim.Now();
  EXPECT_EQ(frontend.stats().requests,
            frontend.stats().chat_dispatched + frontend.stats().rejected_total());
  for (serving::TaskExecutor* te : tes) {
    const flowserve::EngineStats& es = te->engine().stats();
    EXPECT_EQ(es.submitted, es.completed + es.cancelled + es.aborted + es.shed)
        << "TE " << te->id() << " leaked sequences";
    if (te->ready()) {
      EXPECT_TRUE(te->engine().idle()) << "TE " << te->id() << " still holds work at end";
    }
  }
  return outcome;
}

TEST(ChaosPropertyTest, HedgedRequestsRacingCrashesConserveRequestsAndTokens) {
  bool any_hedges = false;
  bool any_cancels = false;
  for (uint64_t seed : {1ull, 7ull, 42ull}) {
    ChaosOutcome outcome = RunHedgeChaos(seed);
    EXPECT_EQ(outcome.completed.size() + outcome.errored.size(), 40u)
        << "seed " << seed << " lost a request";
    EXPECT_EQ(outcome.double_terminated, 0) << "seed " << seed;
    any_hedges = any_hedges || outcome.hedges > 0;
    any_cancels = any_cancels || outcome.hedge_cancels > 0;

    ChaosOutcome replay = RunHedgeChaos(seed);
    EXPECT_TRUE(outcome == replay) << "seed " << seed << " diverged";
  }
  EXPECT_TRUE(any_hedges) << "hedging was a no-op under chaos";
  EXPECT_TRUE(any_cancels) << "no hedge loser was ever cancelled";
}

TEST(ChaosPropertyTest, DisabledFaultsMakeSeedIrrelevant) {
  ChaosOutcome a = RunChaos(7, /*enable_faults=*/false);
  ChaosOutcome b = RunChaos(99, /*enable_faults=*/false);
  EXPECT_TRUE(a == b);
  EXPECT_EQ(a.errored.size(), 0u);
  EXPECT_EQ(a.completed.size(), 40u);
  EXPECT_EQ(a.crashes, 0);
}

}  // namespace
}  // namespace deepserve
