// Cancellation and fault-tolerance tests: request cancel paths in the
// engine, TE failure injection, and JE re-dispatch of lost jobs.

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "distflow/distflow.h"
#include "flowserve/engine.h"
#include "hw/cluster.h"
#include "serving/cluster_manager.h"
#include "serving/job_executor.h"
#include "serving/predictor.h"
#include "sim/simulator.h"
#include "workload/tracegen.h"

namespace deepserve {
namespace {

flowserve::EngineConfig SmallEngine(flowserve::EngineRole role) {
  flowserve::EngineConfig config;
  config.model = model::ModelSpec::Tiny1B();
  config.parallelism = {1, 1, 1};
  config.role = role;
  config.kv_block_capacity_override = 4096;
  return config;
}

workload::RequestSpec MakeRequest(workload::RequestId id, int64_t prefill, int64_t decode,
                                  TokenId base = 700) {
  workload::RequestSpec spec;
  spec.id = id;
  spec.decode_len = decode;
  for (int64_t i = 0; i < prefill; ++i) {
    spec.prompt.push_back(base + static_cast<TokenId>(i % 8000));
  }
  return spec;
}

// ---------------- Engine cancellation ----------------

class CancelTest : public ::testing::Test {
 protected:
  CancelTest() : engine_(&sim_, SmallEngine(flowserve::EngineRole::kColocated)) {}
  sim::Simulator sim_;
  flowserve::Engine engine_;
};

TEST_F(CancelTest, CancelUnknownRequestFails) {
  EXPECT_EQ(engine_.Cancel(42).code(), StatusCode::kNotFound);
}

TEST_F(CancelTest, CancelQueuedRequestFiresNoCallbacks) {
  bool any_callback = false;
  engine_.Submit(MakeRequest(1, 2048, 128),
                 [&](const flowserve::Sequence&) { any_callback = true; },
                 [&](const flowserve::Sequence&) { any_callback = true; });
  // Cancel while still in the tokenizer (no events have run).
  EXPECT_TRUE(engine_.Cancel(1).ok());
  sim_.Run();
  EXPECT_FALSE(any_callback);
  EXPECT_TRUE(engine_.idle());
  EXPECT_EQ(engine_.stats().cancelled, 1);
}

TEST_F(CancelTest, CancelMidPrefillReleasesKv) {
  engine_.Submit(MakeRequest(1, 4096, 128), nullptr, nullptr);
  sim_.RunUntil(MillisecondsToNs(120));  // some chunks done, prefill ongoing
  EXPECT_GT(engine_.rtc().npu_blocks_used(), 0);
  ASSERT_TRUE(engine_.Cancel(1).ok());
  sim_.Run();
  EXPECT_TRUE(engine_.idle());
  // No cached entry was preserved for the cancelled request.
  EXPECT_EQ(engine_.rtc().npu_blocks_used(), 0);
}

TEST_F(CancelTest, CancelMidDecodeLeavesOthersRunning) {
  int completed = 0;
  engine_.Submit(MakeRequest(1, 512, 512), nullptr,
                 [&](const flowserve::Sequence&) { ++completed; });
  engine_.Submit(MakeRequest(2, 512, 64, 30000), nullptr,
                 [&](const flowserve::Sequence&) { ++completed; });
  sim_.RunUntil(SecondsToNs(1.0));  // both decoding
  ASSERT_TRUE(engine_.Cancel(1).ok());
  sim_.Run();
  EXPECT_EQ(completed, 1);  // only request 2 finished
  EXPECT_TRUE(engine_.idle());
}

TEST_F(CancelTest, CancelDuringPopulateWait) {
  // Build a cached entry, demote it, then cancel a request mid-populate.
  auto first = MakeRequest(1, 2048, 2);
  bool done = false;
  engine_.Submit(first, nullptr, [&](const flowserve::Sequence&) { done = true; });
  sim_.Run();
  ASSERT_TRUE(done);
  auto& rtc = engine_.rtc();
  auto info = rtc.MatchByPrefixToken(first.prompt);
  ASSERT_TRUE(info.hit());
  rtc.Acquire(info.blocks);
  rtc.Copy(info.blocks, rtc::Tier::kDram, nullptr);
  sim_.Run();
  rtc.Free(info.blocks);
  ASSERT_TRUE(rtc.EnsureNpuFree(rtc.config().pool.npu_capacity).ok());  // force demote

  // Slow transfers so the populate window is wide.
  engine_.SetRtcTransferFn([this](rtc::Tier, rtc::Tier, Bytes, std::function<void()> cb) {
    sim_.ScheduleAfter(SecondsToNs(5), std::move(cb));
  });
  auto second = MakeRequest(2, 2048, 4);
  bool second_done = false;
  engine_.Submit(second, nullptr, [&](const flowserve::Sequence&) { second_done = true; });
  sim_.RunUntil(sim_.Now() + MillisecondsToNs(100));  // inside the populate
  ASSERT_TRUE(engine_.Cancel(2).ok());
  sim_.Run();
  EXPECT_FALSE(second_done);
  EXPECT_TRUE(engine_.idle());
}

TEST_F(CancelTest, AbortDropsEverything) {
  int callbacks = 0;
  for (int i = 0; i < 6; ++i) {
    engine_.Submit(MakeRequest(static_cast<workload::RequestId>(i + 1), 1024, 256,
                               static_cast<TokenId>(100 + 999 * i)),
                   nullptr, [&](const flowserve::Sequence&) { ++callbacks; });
  }
  sim_.RunUntil(MillisecondsToNs(300));
  size_t dropped = engine_.Abort();
  EXPECT_EQ(dropped, 6u);
  sim_.Run();
  EXPECT_EQ(callbacks, 0);
  EXPECT_TRUE(engine_.idle());
  EXPECT_EQ(engine_.rtc().npu_blocks_used(), 0);
  EXPECT_EQ(engine_.stats().aborted, 6);
}

TEST_F(CancelTest, EngineUsableAfterAbort) {
  engine_.Submit(MakeRequest(1, 1024, 128), nullptr, nullptr);
  sim_.RunUntil(MillisecondsToNs(100));
  engine_.Abort();
  bool done = false;
  engine_.Submit(MakeRequest(2, 512, 16, 40000), nullptr,
                 [&](const flowserve::Sequence&) { done = true; });
  sim_.Run();
  EXPECT_TRUE(done);
}

// ---------------- Platform fault tolerance ----------------

class FaultToleranceTest : public ::testing::Test {
 protected:
  FaultToleranceTest() {
    hw::ClusterConfig cc;
    cc.num_machines = 4;
    cluster_ = std::make_unique<hw::Cluster>(&sim_, cc);
    transfer_ = std::make_unique<distflow::TransferEngine>(&sim_, cluster_.get(),
                                                           distflow::DistFlowConfig{});
    manager_ = std::make_unique<serving::ClusterManager>(&sim_, cluster_.get(),
                                                         transfer_.get());
    serving::JeConfig config;
    config.policy = serving::SchedulingPolicy::kLoadOnly;
    je_ = std::make_unique<serving::JobExecutor>(&sim_, config, serving::PdHeatmap::Default(),
                                                 serving::MakeOraclePredictor());
    manager_->AddFailureHandler([this](serving::TeId id) { je_->OnTeFailure(id); });
  }

  serving::TaskExecutor* AddTe(flowserve::EngineRole role) {
    auto te = manager_->CreateReadyTe(SmallEngine(role)).value();
    switch (role) {
      case flowserve::EngineRole::kColocated:
        je_->AddColocatedTe(te);
        break;
      case flowserve::EngineRole::kPrefillOnly:
        je_->AddPrefillTe(te);
        break;
      case flowserve::EngineRole::kDecodeOnly:
        je_->AddDecodeTe(te);
        break;
    }
    endpoints_.push_back(te->id());
    return te;
  }

  void Link() {
    ASSERT_TRUE(transfer_->LinkCluster(endpoints_, nullptr).ok());
    sim_.Run();
  }

  sim::Simulator sim_;
  std::unique_ptr<hw::Cluster> cluster_;
  std::unique_ptr<distflow::TransferEngine> transfer_;
  std::unique_ptr<serving::ClusterManager> manager_;
  std::unique_ptr<serving::JobExecutor> je_;
  std::vector<distflow::EndpointId> endpoints_;
};

TEST_F(FaultToleranceTest, KillUnknownTeFails) {
  EXPECT_FALSE(manager_->KillTe(99).ok());
}

TEST_F(FaultToleranceTest, ColocatedTeFailureRedispatchesInflightJobs) {
  auto* te1 = AddTe(flowserve::EngineRole::kColocated);
  auto* te2 = AddTe(flowserve::EngineRole::kColocated);
  Link();
  std::set<workload::RequestId> completed;
  for (int i = 0; i < 8; ++i) {
    auto spec = MakeRequest(static_cast<workload::RequestId>(i + 1), 1024, 1024,
                            static_cast<TokenId>(100 + 777 * i));
    je_->HandleRequest(spec, nullptr, [&completed, id = spec.id](const flowserve::Sequence&) {
      completed.insert(id);
    });
  }
  sim_.RunUntil(MillisecondsToNs(200));  // work in flight on both TEs
  auto dropped = manager_->KillTe(te1->id());
  ASSERT_TRUE(dropped.ok());
  EXPECT_GT(*dropped, 0u);
  sim_.Run();
  // Every request completed despite the crash (retried on te2).
  EXPECT_EQ(completed.size(), 8u);
  EXPECT_GT(je_->stats().retries, 0);
  EXPECT_EQ(je_->stats().failed_tes_handled, 1);
  EXPECT_GT(te2->engine().stats().completed, 0);
  EXPECT_EQ(te1->state(), serving::TeState::kStopped);
}

TEST_F(FaultToleranceTest, DecodeTeFailureRetriesDisaggregatedJobs) {
  AddTe(flowserve::EngineRole::kPrefillOnly);
  auto* decode1 = AddTe(flowserve::EngineRole::kDecodeOnly);
  AddTe(flowserve::EngineRole::kDecodeOnly);
  Link();
  std::set<workload::RequestId> completed;
  for (int i = 0; i < 6; ++i) {
    auto spec = MakeRequest(static_cast<workload::RequestId>(i + 1), 2048, 2048,
                            static_cast<TokenId>(100 + 555 * i));
    je_->HandleRequest(spec, nullptr, [&completed, id = spec.id](const flowserve::Sequence&) {
      completed.insert(id);
    });
  }
  sim_.RunUntil(SecondsToNs(1));  // some decodes running on both decode TEs
  ASSERT_TRUE(manager_->KillTe(decode1->id()).ok());
  sim_.Run();
  EXPECT_EQ(completed.size(), 6u);
  EXPECT_GT(je_->stats().retries, 0);
}

TEST_F(FaultToleranceTest, PrefillTeFailureRetriesViaSurvivingPair) {
  auto* prefill1 = AddTe(flowserve::EngineRole::kPrefillOnly);
  AddTe(flowserve::EngineRole::kPrefillOnly);
  AddTe(flowserve::EngineRole::kDecodeOnly);
  Link();
  std::set<workload::RequestId> completed;
  for (int i = 0; i < 6; ++i) {
    auto spec = MakeRequest(static_cast<workload::RequestId>(i + 1), 4096, 32,
                            static_cast<TokenId>(100 + 311 * i));
    je_->HandleRequest(spec, nullptr, [&completed, id = spec.id](const flowserve::Sequence&) {
      completed.insert(id);
    });
  }
  sim_.RunUntil(MillisecondsToNs(200));  // prefills in flight
  ASSERT_TRUE(manager_->KillTe(prefill1->id()).ok());
  sim_.Run();
  EXPECT_EQ(completed.size(), 6u);
}

TEST_F(FaultToleranceTest, FailedJobsMarkedInLedger) {
  auto* te1 = AddTe(flowserve::EngineRole::kColocated);
  AddTe(flowserve::EngineRole::kColocated);
  Link();
  for (int i = 0; i < 4; ++i) {
    je_->HandleRequest(MakeRequest(static_cast<workload::RequestId>(i + 1), 1024, 256,
                                   static_cast<TokenId>(100 + 131 * i)),
                       nullptr, nullptr);
  }
  sim_.RunUntil(MillisecondsToNs(400));
  ASSERT_TRUE(manager_->KillTe(te1->id()).ok());
  sim_.Run();
  int failed = 0;
  int completed = 0;
  for (const auto& job : je_->jobs()) {
    if (job.state == serving::JobState::kFailed) {
      ++failed;
    }
    if (job.state == serving::JobState::kCompleted) {
      ++completed;
    }
  }
  EXPECT_GT(failed, 0);
  // Retries created fresh (completed) jobs for the failed ones.
  EXPECT_EQ(completed, 4 + failed > 4 ? completed : completed);
  EXPECT_GE(completed, 4);
}

TEST_F(FaultToleranceTest, DoubleKillFails) {
  auto* te1 = AddTe(flowserve::EngineRole::kColocated);
  AddTe(flowserve::EngineRole::kColocated);
  Link();
  ASSERT_TRUE(manager_->KillTe(te1->id()).ok());
  EXPECT_EQ(manager_->KillTe(te1->id()).status().code(), StatusCode::kFailedPrecondition);
}

TEST_F(FaultToleranceTest, NpusReleasedAfterKill) {
  auto* te1 = AddTe(flowserve::EngineRole::kColocated);
  Link();
  ASSERT_TRUE(manager_->KillTe(te1->id()).ok());
  // Freed capacity is reusable immediately.
  EXPECT_TRUE(manager_->CreateReadyTe(SmallEngine(flowserve::EngineRole::kColocated)).ok());
}

}  // namespace
}  // namespace deepserve
