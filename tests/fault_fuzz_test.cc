// Fuzz-style robustness tests for FaultInjector::ParseSchedule. The parser
// faces operator-typed strings (CLI flags, config files); the contract is
// that NO input crashes it or slips an out-of-range value through — malformed
// specs come back as InvalidArgument with the offending clause intact. CI
// runs this binary under ASan/UBSan, so any strtod/strtoll misuse, overflow,
// or container misstep surfaces here.

#include <gtest/gtest.h>

#include <cmath>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time_units.h"
#include "common/types.h"
#include "faults/fault_injector.h"

namespace deepserve {
namespace {

using faults::FaultEvent;
using faults::FaultInjector;

// Every event a successful parse returns must be in-range: this is what the
// strict field parsing guarantees downstream code can rely on.
void ExpectSane(const std::vector<FaultEvent>& events, const std::string& spec) {
  for (const FaultEvent& e : events) {
    EXPECT_GE(e.time, 0) << spec;
    EXPECT_GE(e.duration, 0) << spec;
    EXPECT_GE(e.target, -1) << spec;
    EXPECT_LE(e.target, 1'000'000) << spec;
    EXPECT_TRUE(std::isfinite(e.factor)) << spec;
    if (e.kind == faults::FaultKind::kLinkDegrade) {
      EXPECT_GT(e.factor, 0.0) << spec;
      EXPECT_LE(e.factor, 1.0) << spec;
    }
    if (e.kind == faults::FaultKind::kSlowNode) {
      EXPECT_GE(e.factor, 1.0) << spec;
    }
  }
}

TEST(FaultFuzzTest, MalformedSpecsReturnErrorsNotCrashes) {
  const char* kBad[] = {
      "npu",
      "npu@",
      "@5",
      "npu@@5",
      "npu@abc",
      "npu@5abc",        // trailing garbage after the number
      "npu@-3",
      "npu@1e999",       // double overflow (ERANGE)
      "npu@nan",
      "npu@inf",
      "npu@99999999999999",  // past the schedule-horizon cap
      "npu@5x",
      "npu@5xabc",
      "npu@5x-2",
      "npu@5x1e999",
      "npu@5x999999999999",
      "link@5:",
      "link@5:abc",
      "link@5:1.5",   // bandwidth scale > 1
      "link@5:0",     // scale must be positive
      "link@5:-0.5",
      "link@5:nan",
      "link@5:1e999",
      "slow@5:0.5",   // multiplier < 1
      "slow@5:inf",
      "npu@5#",
      "npu@5#abc",
      "npu@5#-1",
      "npu@5#1.5",
      "npu@5#99999999999999999999",  // strtoll overflow
      "npu@5#2#3",
      "meteor@5",
      "npu@5:0.5x10#2:extra",
      "npu@0x10#2x",  // duplicate duration marker
      "cm@5:2",       // cm crash takes no ':' field
      "cm@5x10",      // control-plane crashes are permanent
      "je@5x10",
      "je@5:",        // empty ordinal
      "je@5:bad",
      "je@5:-1",
      "je@5:1.5",     // ordinal must be integral
      "je@5:99999999999999999999",  // strtoll overflow
  };
  for (const char* spec : kBad) {
    auto result = FaultInjector::ParseSchedule(spec);
    EXPECT_FALSE(result.ok()) << "accepted malformed spec: \"" << spec << "\"";
    if (!result.ok()) {
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << spec;
    }
  }
}

TEST(FaultFuzzTest, EmptyClausesAreTolerated) {
  // ';'-splitting skips empty items: trailing/duplicate separators and the
  // empty string are all fine (an unset CLI flag parses to zero events).
  for (const char* spec : {"", ";", ";;;", "npu@5;", "npu@5;;shell@1"}) {
    auto result = FaultInjector::ParseSchedule(spec);
    EXPECT_TRUE(result.ok()) << "\"" << spec << "\": " << result.status().ToString();
  }
  EXPECT_EQ(FaultInjector::ParseSchedule("")->size(), 0u);
  EXPECT_EQ(FaultInjector::ParseSchedule("npu@5;;shell@1")->size(), 2u);
}

TEST(FaultFuzzTest, ValidGrammarCornersStillParse) {
  // Boundary values the strict parser must keep accepting.
  auto ok = FaultInjector::ParseSchedule("link@0:1;slow@5:1;npu@5#0;shell@5x0;npu@5#1000000");
  ASSERT_TRUE(ok.ok()) << ok.status().ToString();
  EXPECT_EQ(ok->size(), 5u);
  ExpectSane(*ok, "corners");
  // Control-plane crash clauses: seeded cm, je by ':' ordinal and by '#'.
  auto ctrl = FaultInjector::ParseSchedule("cm@0;je@5;je@5:0;je@5:1000000;je@5#3");
  ASSERT_TRUE(ctrl.ok()) << ctrl.status().ToString();
  EXPECT_EQ(ctrl->size(), 5u);
  ExpectSane(*ctrl, "ctrl corners");
  EXPECT_EQ((*ctrl)[2].target, 0);
  EXPECT_EQ((*ctrl)[4].target, 3);
  // Fractional seconds and scientific notation are fine when in range.
  auto sci = FaultInjector::ParseSchedule("npu@1.5e1;link@0.25:0.5x1e1");
  ASSERT_TRUE(sci.ok()) << sci.status().ToString();
  EXPECT_EQ((*sci)[0].time, SToNs(15.0));
  EXPECT_EQ((*sci)[1].duration, SToNs(10.0));
}

// Random byte soup over the grammar's alphabet: the parser must classify
// every string as parsed-and-sane or InvalidArgument, never crash or hang.
TEST(FaultFuzzTest, RandomAlphabetSoupNeverCrashes) {
  const std::string alphabet = "npushellinkslowmeteorcmje@:x#;.0123456789-+eE \t";
  int accepted = 0;
  for (uint64_t seed = 1; seed <= 400; ++seed) {
    Rng rng(seed);
    std::string spec(static_cast<size_t>(rng.UniformInt(0, 48)), '\0');
    for (char& c : spec) {
      c = alphabet[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(alphabet.size()) - 1))];
    }
    auto result = FaultInjector::ParseSchedule(spec);
    if (result.ok()) {
      ++accepted;
      ExpectSane(*result, spec);
    } else {
      EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << "\"" << spec << "\"";
    }
  }
  // The soup is heavily malformed; this mostly documents that acceptance is
  // possible but rare.
  EXPECT_LT(accepted, 100);
}

// Mutate valid specs one byte at a time: flips between valid and invalid must
// be clean (correct status either way, sane values when accepted).
TEST(FaultFuzzTest, SingleByteMutationsOfValidSpecs) {
  const std::string alphabet = "npushellinkslowcmjex@:#;.0123456789-eE";
  const std::string valid[] = {
      "npu@5",
      "link@10:0.25x20",
      "slow@30:3x10#2",
      "npu@5;shell@1.5;link@2:0.5",
      "cm@12;je@7:1",
  };
  for (const std::string& base : valid) {
    ASSERT_TRUE(FaultInjector::ParseSchedule(base).ok()) << base;
    Rng rng(static_cast<uint64_t>(base.size()) * 77 + 13);
    for (int trial = 0; trial < 300; ++trial) {
      std::string spec = base;
      size_t pos = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(spec.size()) - 1));
      switch (rng.UniformInt(0, 2)) {
        case 0:  // substitute
          spec[pos] =
              alphabet[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(alphabet.size()) - 1))];
          break;
        case 1:  // delete
          spec.erase(pos, 1);
          break;
        case 2:  // insert
          spec.insert(pos, 1,
                      alphabet[static_cast<size_t>(
                          rng.UniformInt(0, static_cast<int64_t>(alphabet.size()) - 1))]);
          break;
      }
      auto result = FaultInjector::ParseSchedule(spec);
      if (result.ok()) {
        ExpectSane(*result, spec);
      } else {
        EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument) << "\"" << spec << "\"";
      }
    }
  }
}

// Parsed plans must inject cleanly: run a handful of accepted random plans
// against a live cluster and require the injector to stay conservative.
TEST(FaultFuzzTest, GeneratedPlansRoundTripThroughScheduler) {
  for (uint64_t seed : {3ull, 19ull}) {
    faults::FaultPlanConfig plan_config;
    plan_config.count = 8;
    auto plan = FaultInjector::GeneratePlan(seed, plan_config);
    ASSERT_EQ(plan.size(), 8u);
    for (size_t i = 1; i < plan.size(); ++i) {
      EXPECT_LE(plan[i - 1].time, plan[i].time) << "plan not sorted";
    }
    ExpectSane(plan, "generated");
  }
}

}  // namespace
}  // namespace deepserve
