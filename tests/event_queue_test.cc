// Direct tests for the slab-allocated calendar event queue, below the
// Simulator API: handle generation checking, bucket grow/shrink rehashes,
// window rewinds for inserts behind the scan position, and exact
// (time, insertion-order) extraction parity against a naive reference model.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <utility>
#include <vector>

#include "common/small_fn.h"
#include "common/time_units.h"
#include "common/types.h"
#include "sim/event_queue.h"

namespace deepserve::sim {
namespace {

using common::SmallFn;

// Pops and invokes every remaining event; returns the number popped. Markers
// accumulate in the vectors the callbacks captured at insertion.
size_t Drain(EventQueue& q) {
  size_t n = 0;
  TimeNs t = 0;
  SmallFn fn;
  while (q.PopIfDue(kTimeNever, &t, &fn)) {
    fn();
    fn.Reset();
    ++n;
  }
  return n;
}

// Inserts an event whose callback appends `marker` to `*out`.
EventQueue::Handle InsertMarked(EventQueue& q, TimeNs t, std::vector<uint64_t>* out,
                                uint64_t marker) {
  return q.Insert(t, [out, marker] { out->push_back(marker); });
}

TEST(EventQueueTest, PopsInTimeThenFifoOrder) {
  EventQueue q;
  std::vector<uint64_t> fired;
  // Shuffled times with duplicates; marker = insertion order.
  const TimeNs times[] = {50, 10, 50, 30, 10, 50, 20, 10};
  for (uint64_t i = 0; i < 8; ++i) {
    InsertMarked(q, times[i], &fired, i);
  }
  EXPECT_EQ(q.live(), 8u);
  TimeNs t = 0;
  SmallFn fn;
  TimeNs prev = 0;
  while (q.PopIfDue(kTimeNever, &t, &fn)) {
    EXPECT_GE(t, prev);
    prev = t;
    fn();
    fn.Reset();
  }
  // Time order, FIFO within each timestamp.
  EXPECT_EQ(fired, (std::vector<uint64_t>{1, 4, 7, 6, 3, 0, 2, 5}));
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, PopIfDueRespectsLimit) {
  EventQueue q;
  std::vector<uint64_t> fired;
  InsertMarked(q, 10, &fired, 10);
  InsertMarked(q, 20, &fired, 20);
  TimeNs t = 0;
  SmallFn fn;
  ASSERT_TRUE(q.PopIfDue(15, &t, &fn));
  EXPECT_EQ(t, 10);
  fn.Reset();
  EXPECT_FALSE(q.PopIfDue(15, &t, &fn)) << "event at 20 is beyond the limit";
  EXPECT_EQ(q.live(), 1u);
  ASSERT_TRUE(q.PopIfDue(20, &t, &fn));
  EXPECT_EQ(t, 20);
}

TEST(EventQueueTest, HandlesAreGenerationCheckedAcrossSlotReuse) {
  EventQueue q;
  std::vector<uint64_t> fired;
  EventQueue::Handle a = InsertMarked(q, 5, &fired, 1);
  EXPECT_NE(a, EventQueue::kNilHandle);
  EXPECT_TRUE(q.Live(a));

  TimeNs t = 0;
  SmallFn fn;
  ASSERT_TRUE(q.PopIfDue(kTimeNever, &t, &fn));
  fn.Reset();
  EXPECT_FALSE(q.Live(a));
  EXPECT_FALSE(q.Cancel(a)) << "handle already fired";

  // The freed slot is recycled under a new generation: the old handle stays
  // dead and must not alias the new occupant.
  EventQueue::Handle b = InsertMarked(q, 7, &fired, 2);
  EXPECT_NE(a, b);
  EXPECT_FALSE(q.Live(a));
  EXPECT_FALSE(q.Cancel(a));
  EXPECT_TRUE(q.Live(b));
  EXPECT_TRUE(q.Cancel(b));
  EXPECT_FALSE(q.Cancel(b)) << "double cancel";
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, CancelStormLeavesSurvivorsInOrder) {
  EventQueue q;
  std::vector<uint64_t> fired;
  std::vector<EventQueue::Handle> handles;
  for (uint64_t i = 0; i < 1000; ++i) {
    handles.push_back(InsertMarked(q, static_cast<TimeNs>((i * 37) % 500), &fired, i));
  }
  // Tombstone ~90%: everything except multiples of 10.
  for (uint64_t i = 0; i < 1000; ++i) {
    if (i % 10 != 0) {
      EXPECT_TRUE(q.Cancel(handles[i]));
    }
  }
  EXPECT_EQ(q.live(), 100u);
  EXPECT_EQ(Drain(q), 100u);
  // Survivors extracted in (time, insertion-order): rebuild expectation.
  std::map<std::pair<TimeNs, uint64_t>, uint64_t> expected;
  for (uint64_t i = 0; i < 1000; i += 10) {
    expected[{static_cast<TimeNs>((i * 37) % 500), i}] = i;
  }
  ASSERT_EQ(fired.size(), expected.size());
  size_t pos = 0;
  for (const auto& [key, marker] : expected) {
    EXPECT_EQ(fired[pos++], marker);
  }
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, InsertBehindScanWindowStillPopsFirst) {
  EventQueue q;
  std::vector<uint64_t> fired;
  // A single far-future event forces the dequeue scan to jump its window far
  // forward when probed...
  InsertMarked(q, SToNs(1000), &fired, 1);
  TimeNs t = 0;
  SmallFn fn;
  EXPECT_FALSE(q.PopIfDue(100, &t, &fn));
  // ...so a subsequent near-term insert lands behind the window floor and
  // must rewind the scan rather than be orphaned for a full ring lap.
  InsertMarked(q, 10, &fired, 2);
  ASSERT_TRUE(q.PopIfDue(100, &t, &fn));
  EXPECT_EQ(t, 10);
  fn();
  fn.Reset();
  ASSERT_TRUE(q.PopIfDue(kTimeNever, &t, &fn));
  EXPECT_EQ(t, SToNs(1000));
  fn();
  EXPECT_EQ(fired, (std::vector<uint64_t>{2, 1}));
}

TEST(EventQueueTest, SparseAndClusteredTimesInterleave) {
  EventQueue q;
  std::vector<uint64_t> fired;
  InsertMarked(q, SToNs(3600), &fired, 0);  // an hour out
  InsertMarked(q, 5, &fired, 1);
  InsertMarked(q, SToNs(1), &fired, 2);
  InsertMarked(q, 6, &fired, 3);
  InsertMarked(q, SToNs(3600), &fired, 4);  // equal-time FIFO at the far end
  Drain(q);
  EXPECT_EQ(fired, (std::vector<uint64_t>{1, 3, 2, 0, 4}));
}

TEST(EventQueueTest, GrowAndShrinkRehashPreservesExactOrder) {
  EventQueue q;
  const size_t initial_buckets = q.bucket_count();
  std::vector<uint64_t> fired;
  std::map<std::pair<TimeNs, uint64_t>, uint64_t> model;  // (time, ord) -> marker
  uint64_t state = 7;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  // Enough inserts to force several doublings (grow triggers past 2x bucket
  // occupancy) with deliberately clumpy times so buckets collide.
  for (uint64_t i = 0; i < 20000; ++i) {
    TimeNs t = static_cast<TimeNs>(next() % 1000 + (next() % 8) * 100000);
    InsertMarked(q, t, &fired, i);
    model[{t, i}] = i;
  }
  const size_t peak_buckets = q.bucket_count();
  EXPECT_GT(peak_buckets, initial_buckets) << "population should grow the ring";
  // Drain almost all of it — crossing the 1/4-occupancy threshold shrinks
  // the ring back down mid-extraction. (Far clumps ride the overflow tier
  // and fold in along the way, so the ring must fall well below peak once
  // only a sliver of the population remains.)
  TimeNs t = 0;
  SmallFn fn;
  TimeNs prev = 0;
  for (int i = 0; i < 19900; ++i) {
    ASSERT_TRUE(q.PopIfDue(kTimeNever, &t, &fn));
    ASSERT_GE(t, prev);
    prev = t;
    fn();
    fn.Reset();
  }
  EXPECT_LT(q.bucket_count(), peak_buckets) << "drain should shrink the ring";
  // Refill beyond the survivors, then drain fully.
  for (uint64_t i = 20000; i < 21000; ++i) {
    TimeNs ti = prev + static_cast<TimeNs>(next() % 5000);
    InsertMarked(q, ti, &fired, i);
    model[{ti, i}] = i;
  }
  Drain(q);
  EXPECT_TRUE(q.empty());
  ASSERT_EQ(fired.size(), model.size());
  size_t pos = 0;
  for (const auto& [key, marker] : model) {
    ASSERT_EQ(fired[pos], marker) << "extraction diverged at position " << pos;
    ++pos;
  }
}

// Randomized parity: 50k mixed insert/cancel/pop operations against a naive
// ordered-map reference. Checks exact extraction order, live counts, and
// Cancel()/Live() agreement with the model at every step.
// Far events (beyond one ring-year of the dequeue window) take the overflow
// tier at insert and must migrate back into the ring in exact (time, seq)
// order once the simulation reaches them — including FIFO ties straddling
// the tiers.
TEST(EventQueueTest, FarEventsMigrateInExactOrder) {
  EventQueue q;
  std::vector<uint64_t> fired;
  // Near cluster: microsecond-scale. Far cluster: seconds out, interleaved
  // insertion so seq ordering crosses the tier boundary.
  InsertMarked(q, 100, &fired, 0);
  InsertMarked(q, SToNs(5), &fired, 1);
  InsertMarked(q, 200, &fired, 2);
  InsertMarked(q, SToNs(5), &fired, 3);  // same far time, later seq
  InsertMarked(q, SToNs(2), &fired, 4);
  EXPECT_GT(q.overflow_size(), 0u) << "second-scale events should take the overflow tier";
  EXPECT_EQ(Drain(q), 5u);
  EXPECT_EQ(fired, (std::vector<uint64_t>{0, 2, 4, 1, 3}));
  EXPECT_EQ(q.overflow_size(), 0u);
}

// "Nothing due before t" must not depend on far-future timers: a limit-
// bounded pop below the overflow bound returns false without disturbing
// them, and they still fire later.
TEST(EventQueueTest, LimitBelowOverflowBoundLeavesFarTimersParked) {
  EventQueue q;
  std::vector<uint64_t> fired;
  for (uint64_t i = 0; i < 100; ++i) {
    InsertMarked(q, SToNs(1) + static_cast<TimeNs>(i), &fired, i);
  }
  TimeNs t = 0;
  SmallFn fn;
  EXPECT_FALSE(q.PopIfDue(MsToNs(1), &t, &fn));
  EXPECT_GT(q.overflow_size(), 0u) << "a far-only probe must not force migration";
  EXPECT_EQ(Drain(q), 100u);
  for (uint64_t i = 0; i < 100; ++i) {
    EXPECT_EQ(fired[i], i);
  }
}

// The deadline-guard pattern: batches of far timers, 90% cancelled long
// before due. Cancellations must compact out of the overflow tier (never
// touching the ring) and the survivors fire in exact order.
TEST(EventQueueTest, MassCancelledFarTimersCompactAndSurvivorsFire) {
  EventQueue q;
  std::vector<uint64_t> fired;
  std::map<std::pair<TimeNs, uint64_t>, uint64_t> expected;
  uint64_t state = 99;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  std::vector<EventQueue::Handle> handles;
  std::vector<TimeNs> times;
  for (uint64_t i = 0; i < 5000; ++i) {
    TimeNs t = SToNs(1) + static_cast<TimeNs>(next() % 1000000);
    handles.push_back(InsertMarked(q, t, &fired, i));
    times.push_back(t);
    expected[{t, i}] = i;
  }
  size_t cancelled = 0;
  for (uint64_t i = 0; i < 5000; ++i) {
    if (i % 10 != 9) {
      ASSERT_TRUE(q.Cancel(handles[i]));
      expected.erase({times[i], i});
      ++cancelled;
    }
  }
  EXPECT_EQ(q.live(), 5000u - cancelled);
  EXPECT_EQ(Drain(q), 5000u - cancelled);
  ASSERT_EQ(fired.size(), expected.size());
  size_t pos = 0;
  for (const auto& [key, marker] : expected) {
    EXPECT_EQ(fired[pos], marker) << "survivor order diverged at " << pos;
    ++pos;
  }
}

TEST(EventQueueTest, RandomOpsMatchReferenceModel) {
  EventQueue q;
  struct ModelEvent {
    EventQueue::Handle handle;
    uint64_t marker;
  };
  std::map<std::pair<TimeNs, uint64_t>, ModelEvent> model;  // (time, ord) -> event
  std::map<EventQueue::Handle, std::pair<TimeNs, uint64_t>> by_handle;
  std::vector<EventQueue::Handle> all_handles;
  std::vector<uint64_t> fired;
  uint64_t ord = 0;
  TimeNs now = 0;
  uint64_t state = 424242;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  for (int op = 0; op < 50000; ++op) {
    uint64_t r = next() % 100;
    if (r < 55 || all_handles.empty()) {
      // Mixed near/far horizon exercises both the year scan and direct search.
      TimeNs horizon = (next() % 20 == 0) ? SToNs(10) : TimeNs{20000};
      TimeNs t = now + static_cast<TimeNs>(next() % static_cast<uint64_t>(horizon));
      uint64_t o = ord++;
      EventQueue::Handle h = InsertMarked(q, t, &fired, o);
      model[{t, o}] = ModelEvent{h, o};
      by_handle[h] = {t, o};
      all_handles.push_back(h);
    } else if (r < 80) {
      EventQueue::Handle h = all_handles[next() % all_handles.size()];
      auto it = by_handle.find(h);
      bool was_live = it != by_handle.end();
      ASSERT_EQ(q.Live(h), was_live);
      ASSERT_EQ(q.Cancel(h), was_live);
      if (was_live) {
        model.erase(it->second);
        by_handle.erase(it);
      }
    } else {
      TimeNs t = 0;
      SmallFn fn;
      bool popped = q.PopIfDue(kTimeNever, &t, &fn);
      ASSERT_EQ(popped, !model.empty());
      if (popped) {
        auto it = model.begin();
        ASSERT_EQ(t, it->first.first);
        size_t before = fired.size();
        fn();
        fn.Reset();
        ASSERT_EQ(fired.size(), before + 1);
        ASSERT_EQ(fired.back(), it->second.marker) << "popped a non-minimum event";
        ASSERT_GE(t, now);
        now = t;
        by_handle.erase(it->second.handle);
        model.erase(it);
      }
    }
    ASSERT_EQ(q.live(), model.size()) << "after op " << op;
  }
  Drain(q);
  EXPECT_TRUE(q.empty());
}

}  // namespace
}  // namespace deepserve::sim
