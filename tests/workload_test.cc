#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "common/time_units.h"
#include "common/types.h"
#include "workload/metrics.h"
#include "workload/request.h"
#include "workload/tracegen.h"

namespace deepserve::workload {
namespace {

TEST(LengthDistributionTest, ConstantWhenCvZero) {
  LengthDistribution dist{500, 0.0, 1, 10000};
  Rng rng(1);
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(dist.Sample(rng), 500);
  }
}

TEST(LengthDistributionTest, MeanApproximatelyMatches) {
  LengthDistribution dist{2048, 0.3, 1, 100000};
  Rng rng(2);
  double sum = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(dist.Sample(rng));
  }
  EXPECT_NEAR(sum / n, 2048, 60);
}

TEST(LengthDistributionTest, RespectsClamps) {
  LengthDistribution dist{100, 2.0, 50, 200};
  Rng rng(3);
  for (int i = 0; i < 5000; ++i) {
    int64_t v = dist.Sample(rng);
    EXPECT_GE(v, 50);
    EXPECT_LE(v, 200);
  }
}

TEST(TraceGeneratorTest, PoissonArrivalsMatchRps) {
  TraceConfig config;
  config.rps = 5.0;
  config.duration_s = 200.0;
  config.seed = 11;
  TraceGenerator gen(config);
  auto trace = gen.Generate();
  EXPECT_NEAR(static_cast<double>(trace.size()), 1000.0, 100.0);
  // Arrivals sorted and within the horizon.
  for (size_t i = 1; i < trace.size(); ++i) {
    EXPECT_GE(trace[i].arrival, trace[i - 1].arrival);
  }
  EXPECT_LT(trace.back().arrival, SToNs(200.0));
}

TEST(TraceGeneratorTest, DeterministicAcrossInstances) {
  TraceConfig config = TraceGenerator::InternalTrace(1.0, 30.0, 99);
  auto a = TraceGenerator(config).Generate();
  auto b = TraceGenerator(config).Generate();
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].prompt, b[i].prompt);
    EXPECT_EQ(a[i].decode_len, b[i].decode_len);
  }
}

TEST(TraceGeneratorTest, InternalTraceMatchesPaperStatistics) {
  // "roughly 2K input with 200 output" (Fig. 4 caption).
  auto trace = TraceGenerator(TraceGenerator::InternalTrace(4.0, 300.0)).Generate();
  ASSERT_GT(trace.size(), 500u);
  double in_sum = 0;
  double out_sum = 0;
  for (const auto& req : trace) {
    in_sum += static_cast<double>(req.prefill_len());
    out_sum += static_cast<double>(req.decode_len);
  }
  EXPECT_NEAR(in_sum / static_cast<double>(trace.size()), 2048, 256);
  EXPECT_NEAR(out_sum / static_cast<double>(trace.size()), 200, 40);
}

TEST(TraceGeneratorTest, SharedPrefixesActuallyShared) {
  TraceConfig config = TraceGenerator::CodeGenTrace(2.0, 120.0, 5);
  auto trace = TraceGenerator(config).Generate();
  ASSERT_GT(trace.size(), 50u);
  // Count pairs sharing a first token: with a 64-prefix Zipf pool this must
  // be common.
  int shared_first = 0;
  for (size_t i = 1; i < trace.size(); ++i) {
    if (!trace[i].prompt.empty() && trace[i].prompt[0] == trace[0].prompt[0]) {
      ++shared_first;
    }
  }
  EXPECT_GT(shared_first, 0);
  // And deeper: two requests from the most popular prefix share >= 64 tokens.
  int deep_pairs = 0;
  for (size_t i = 0; i + 1 < trace.size() && deep_pairs == 0; ++i) {
    for (size_t j = i + 1; j < trace.size(); ++j) {
      size_t common = 0;
      size_t limit = std::min(trace[i].prompt.size(), trace[j].prompt.size());
      while (common < limit && trace[i].prompt[common] == trace[j].prompt[common]) {
        ++common;
      }
      if (common >= 64) {
        ++deep_pairs;
        break;
      }
    }
  }
  EXPECT_GT(deep_pairs, 0);
}

TEST(TraceGeneratorTest, NoSharingWhenPoolDisabled) {
  TraceConfig config;
  config.rps = 10.0;
  config.duration_s = 10.0;
  config.prefix_pool_size = 0;
  config.prefill = LengthDistribution{512, 0.0, 512, 512};
  auto trace = TraceGenerator(config).Generate();
  ASSERT_GE(trace.size(), 2u);
  // Random prompts should differ immediately (overwhelmingly likely).
  EXPECT_NE(trace[0].prompt, trace[1].prompt);
}

TEST(TraceGeneratorTest, FixedBatchShape) {
  auto batch = TraceGenerator::FixedBatch(8, 1024, 128);
  ASSERT_EQ(batch.size(), 8u);
  for (const auto& req : batch) {
    EXPECT_EQ(req.arrival, 0);
    EXPECT_EQ(req.prefill_len(), 1024);
    EXPECT_EQ(req.decode_len, 128);
  }
}

TEST(RequestRecordTest, DerivedMetrics) {
  RequestRecord r;
  r.arrival = SToNs(1.0);
  r.first_token = SToNs(1.5);
  r.completion = SToNs(3.5);
  r.prefill_len = 2048;
  r.decode_len = 101;
  EXPECT_DOUBLE_EQ(r.ttft_ms(), 500.0);
  EXPECT_DOUBLE_EQ(r.jct_ms(), 2500.0);
  EXPECT_DOUBLE_EQ(r.tpot_ms(), 2000.0 / 100.0);
}

TEST(MetricsCollectorTest, AggregatesAndThroughput) {
  MetricsCollector collector;
  for (int i = 0; i < 10; ++i) {
    RequestRecord r;
    r.id = static_cast<RequestId>(i);
    r.arrival = SToNs(static_cast<double>(i));
    r.first_token = r.arrival + MsToNs(100);
    r.completion = r.first_token + SToNs(1.0);
    r.prefill_len = 1000;
    r.decode_len = 100;
    collector.Record(r);
  }
  EXPECT_EQ(collector.completed(), 10u);
  EXPECT_DOUBLE_EQ(collector.ttft_ms().p50(), 100.0);
  // 1000 tokens over [0, 10.1] seconds.
  EXPECT_NEAR(collector.DecodeThroughput(), 1000.0 / 10.1, 0.5);
  EXPECT_NEAR(collector.RequestThroughput(), 10.0 / 10.1, 0.05);
}

TEST(MetricsCollectorTest, SloAttainment) {
  MetricsCollector collector;
  auto add = [&](double ttft_ms, double tpot_ms) {
    RequestRecord r;
    r.arrival = 0;
    r.first_token = MsToNs(ttft_ms);
    r.decode_len = 11;
    r.completion = r.first_token + MsToNs(tpot_ms * 10);
    collector.Record(r);
  };
  add(100, 20);   // meets both
  add(1000, 20);  // misses TTFT
  add(100, 80);   // misses TPOT
  add(900, 90);   // misses both
  EXPECT_DOUBLE_EQ(collector.SloAttainment(500, 50), 0.25);
  EXPECT_DOUBLE_EQ(collector.SloAttainment(500, -1), 0.5);
  EXPECT_DOUBLE_EQ(collector.SloAttainment(-1, -1), 1.0);
}

TEST(MetricsCollectorTest, EmptyCollectorSafe) {
  MetricsCollector collector;
  EXPECT_DOUBLE_EQ(collector.DecodeThroughput(), 0.0);
  EXPECT_DOUBLE_EQ(collector.SloAttainment(100, 100), 0.0);
  EXPECT_FALSE(collector.Summary().empty());
}

}  // namespace
}  // namespace deepserve::workload
