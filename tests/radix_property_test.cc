// RadixTree property tests against a naive reference model.
//
// The reference for Match is the *coverage set*: every prefix of every
// root-to-node string the tree currently stores. Match(q) must return the
// longest prefix of q in that set — true whether the match ends on a node
// boundary or partway through a compressed edge, and it stays true across
// edge splits and leaf evictions. Structural invariants (edge keys, depth
// bookkeeping, parent pointers, compression) are re-audited after every
// mutation.

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <vector>

#include "common/rng.h"
#include "rtc/radix_tree.h"

namespace deepserve::rtc {
namespace {

// Minimal payload satisfying the SplitTail contract.
struct Span {
  Span SplitTail(size_t) { return Span{}; }
};

using Tree = RadixTree<Span>;
using Key = BlockKey;
using Seq = std::vector<Key>;

// Coverage-set reference: longest prefix of `q` present in `coverage`.
size_t NaiveMatch(const std::set<Seq>& coverage, const Seq& q) {
  for (size_t len = q.size(); len > 0; --len) {
    if (coverage.count(Seq(q.begin(), q.begin() + static_cast<ptrdiff_t>(len))) > 0) {
      return len;
    }
  }
  return 0;
}

void AddCoverage(std::set<Seq>* coverage, const Seq& seq) {
  for (size_t len = 1; len <= seq.size(); ++len) {
    coverage->insert(Seq(seq.begin(), seq.begin() + static_cast<ptrdiff_t>(len)));
  }
}

// The full root-to-end string of `node`.
Seq FullString(const Tree::Node* node) {
  std::vector<const Tree::Node*> chain;
  for (const Tree::Node* n = node; n != nullptr && n->parent != nullptr; n = n->parent) {
    chain.push_back(n);
  }
  Seq out;
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    out.insert(out.end(), (*it)->edge.begin(), (*it)->edge.end());
  }
  return out;
}

// Random sequence over a tiny alphabet so prefixes collide and force splits.
Seq RandomSeq(Rng& rng, size_t max_len) {
  Seq seq(static_cast<size_t>(rng.UniformInt(1, static_cast<int64_t>(max_len))));
  for (Key& k : seq) {
    k = static_cast<Key>(rng.UniformInt(1, 5));
  }
  return seq;
}

void AuditStructure(Tree& tree) {
  tree.Visit([&](Tree::Node* node) {
    ASSERT_FALSE(node->edge.empty()) << "non-root node with empty edge";
    ASSERT_NE(node->parent, nullptr);
    // The child is keyed by its first edge symbol in the parent's map.
    Tree::Node* found = node->parent->children.Find(node->edge.front());
    ASSERT_NE(found, nullptr);
    EXPECT_EQ(found, node) << "child map key does not lead back to the node";
    // Depth bookkeeping survives splits.
    EXPECT_EQ(node->depth, node->parent->depth + node->edge.size());
    node->children.ForEach([&](Key key, Tree::Node* child) {
      EXPECT_EQ(child->parent, node);
      EXPECT_EQ(key, child->edge.front());
    });
  });
}

TEST(RadixPropertyTest, MatchAgreesWithNaiveReferenceUnderRandomInserts) {
  for (uint64_t seed : {3ull, 17ull, 91ull}) {
    Rng rng(seed);
    Tree tree;
    std::set<Seq> coverage;
    std::vector<Seq> inserted;
    for (int round = 0; round < 200; ++round) {
      Seq seq = RandomSeq(rng, 12);
      tree.Insert(seq, /*now=*/round);
      AddCoverage(&coverage, seq);
      inserted.push_back(seq);
      AuditStructure(tree);

      // An inserted sequence always fully matches.
      EXPECT_EQ(tree.Match(seq).matched, seq.size()) << "seed " << seed;
      // Random probes agree with the reference, including partial-edge hits.
      for (int probe = 0; probe < 10; ++probe) {
        Seq q = RandomSeq(rng, 14);
        EXPECT_EQ(tree.Match(q).matched, NaiveMatch(coverage, q))
            << "seed " << seed << " round " << round;
      }
      // A previously inserted sequence stays fully matched (splits must not
      // lose coverage).
      const Seq& old = inserted[static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(inserted.size()) - 1))];
      EXPECT_EQ(tree.Match(old).matched, old.size()) << "seed " << seed;
    }
  }
}

TEST(RadixPropertyTest, MatchResultPathIsConsistent) {
  Rng rng(7);
  Tree tree;
  for (int round = 0; round < 100; ++round) {
    tree.Insert(RandomSeq(rng, 10), round);
  }
  for (int probe = 0; probe < 200; ++probe) {
    Seq q = RandomSeq(rng, 12);
    Tree::MatchResult m = tree.Match(q);
    ASSERT_LE(m.matched, q.size());
    // Fully-matched path nodes chain root-most first and sum to the match
    // minus any partial tail.
    size_t covered = 0;
    const Tree::Node* prev = nullptr;
    for (const Tree::Node* node : m.path) {
      covered += node->edge.size();
      if (prev != nullptr) {
        EXPECT_EQ(node->parent, prev);
      }
      prev = node;
    }
    if (m.partial != nullptr) {
      EXPECT_GT(m.partial_len, 0u);
      EXPECT_LT(m.partial_len, m.partial->edge.size());
      covered += m.partial_len;
    }
    EXPECT_EQ(covered, m.matched);
    // The matched symbols really are a prefix of q spelled by the tree.
    if (!m.path.empty() || m.partial != nullptr) {
      const Tree::Node* deepest = m.partial != nullptr ? m.partial : m.path.back();
      Seq spelled = FullString(deepest);
      spelled.resize(m.matched);
      EXPECT_TRUE(std::equal(spelled.begin(), spelled.end(), q.begin()));
    }
  }
}

TEST(RadixPropertyTest, LruEvictionKeepsMatchConsistent) {
  for (uint64_t seed : {5ull, 23ull}) {
    Rng rng(seed);
    Tree tree;
    std::set<Seq> coverage;
    TimeNs now = 0;
    for (int round = 0; round < 150; ++round) {
      ++now;
      if (round < 30 || rng.NextDouble() < 0.6) {
        Seq seq = RandomSeq(rng, 10);
        tree.Insert(seq, now);
        AddCoverage(&coverage, seq);
      } else {
        // Evict the least-recently-used leaf, mirroring in the reference:
        // the leaf's exclusive span (strings longer than its parent's depth
        // along its full string) disappears.
        Tree::Node* leaf = tree.FindLruLeaf([](const Tree::Node&) { return true; });
        if (leaf == nullptr) {
          continue;
        }
        // FindLruLeaf returns a minimal-last_access leaf.
        tree.Visit([&](Tree::Node* node) {
          if (node->is_leaf()) {
            EXPECT_LE(leaf->last_access, node->last_access);
          }
        });
        Seq full = FullString(leaf);
        size_t keep = leaf->parent->depth;
        for (size_t len = keep + 1; len <= full.size(); ++len) {
          coverage.erase(Seq(full.begin(), full.begin() + static_cast<ptrdiff_t>(len)));
        }
        tree.RemoveLeaf(leaf);
      }
      AuditStructure(tree);
      for (int probe = 0; probe < 8; ++probe) {
        Seq q = RandomSeq(rng, 12);
        EXPECT_EQ(tree.Match(q).matched, NaiveMatch(coverage, q))
            << "seed " << seed << " round " << round;
      }
    }
  }
}

TEST(RadixPropertyTest, TokensToBlockKeysDropsPartialTailAndChains) {
  std::vector<TokenId> tokens;
  for (int i = 0; i < 70; ++i) {
    tokens.push_back(1000 + i);
  }
  auto keys = TokensToBlockKeys(tokens, /*block_size=*/16);
  ASSERT_EQ(keys.size(), 4u) << "70 tokens / 16 = 4 full blocks";
  // Chain property: a prefix of tokens yields a prefix of keys.
  auto prefix_keys =
      TokensToBlockKeys(std::span<const TokenId>(tokens.data(), 32), /*block_size=*/16);
  ASSERT_EQ(prefix_keys.size(), 2u);
  EXPECT_EQ(prefix_keys[0], keys[0]);
  EXPECT_EQ(prefix_keys[1], keys[1]);
  // Divergence in the last block of a prefix changes that key only from
  // there on (chain hashing).
  std::vector<TokenId> fork = tokens;
  fork[40] = 9;
  auto fork_keys = TokensToBlockKeys(fork, /*block_size=*/16);
  EXPECT_EQ(fork_keys[0], keys[0]);
  EXPECT_EQ(fork_keys[1], keys[1]);
  EXPECT_NE(fork_keys[2], keys[2]);
  EXPECT_NE(fork_keys[3], keys[3]);
}

}  // namespace
}  // namespace deepserve::rtc
