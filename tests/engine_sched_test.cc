// Scheduling-layer tests (src/flowserve/sched/):
//   * golden-stats parity — the "fcfs" policy must reproduce the pre-refactor
//     engine bit-identically (stats AND per-request timeline hash) across
//     seeds and feature combinations;
//   * policy unit tests — EDF admission ordering, TBT-bounded chunk search,
//     victim selection per policy, shed verdicts;
//   * engine-level behaviour — slo sheds expired/unmeetable requests through
//     on_error exactly once, bounds max_decode_step under the TBT budget, and
//     priority-preempt evicts strictly lower service classes on admission.
#include <algorithm>
#include <deque>
#include <memory>
#include <vector>

#include <gtest/gtest.h>

#include "common/rng.h"
#include "common/status.h"
#include "common/time_units.h"
#include "flowserve/engine.h"
#include "flowserve/sched/fcfs_policy.h"
#include "flowserve/sched/priority_policy.h"
#include "flowserve/sched/sched_policy.h"
#include "flowserve/sched/slo_policy.h"
#include "sim/simulator.h"
#include "workload/request.h"

namespace deepserve::flowserve {
namespace {

// ---------------------------------------------------------------------------
// Golden-stats parity: this workload was run against the pre-refactor engine
// (single-file engine.cc, no sched/ layer) and the resulting stats captured
// below. The fcfs policy is the default, so a default-config engine must
// reproduce every value exactly — including the FNV-1a hash over each
// completion's (request id, first-token time, finish time), which pins the
// full per-request timeline, not just the aggregates.
// ---------------------------------------------------------------------------

struct GoldenResult {
  int64_t steps = 0;
  int64_t prefill_tokens = 0;
  int64_t attended_tokens = 0;
  int64_t decode_tokens = 0;
  int64_t reused_tokens = 0;
  int64_t preemptions = 0;
  int64_t completed = 0;
  DurationNs max_decode_step = 0;
  DurationNs npu_busy = 0;
  uint64_t timeline_hash = 0;  // FNV-1a over (id, first_token, finish) in completion order
  TimeNs end_time = 0;
};

GoldenResult RunGoldenWorkload(uint64_t seed, bool adaptive, bool pic) {
  sim::Simulator sim;
  flowserve::EngineConfig config;
  config.model = model::ModelSpec::Tiny1B();
  config.parallelism = {1, 1, 1};
  config.kv_block_capacity_override = 160;  // tight KV: preemptions happen
  config.enable_chunked_prefill = true;
  config.adaptive_chunking = adaptive;
  config.chunk_target_tpot_ms = 30.0;
  config.enable_pic = pic;
  flowserve::Engine engine(&sim, config);

  Rng rng(seed * 7919 + 17);
  uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](uint64_t v) {
    hash ^= v;
    hash *= 1099511628211ull;
  };
  GoldenResult result;
  std::vector<std::vector<TokenId>> history;
  const int n = 40;
  for (int i = 0; i < n; ++i) {
    workload::RequestSpec spec;
    spec.id = static_cast<workload::RequestId>(i + 1);
    spec.arrival = SToNs(rng.Uniform(0, 6));
    spec.decode_len = rng.UniformInt(4, 160);
    spec.priority = static_cast<int>(rng.UniformInt(0, 2));
    int64_t len = rng.UniformInt(32, 1500);
    std::vector<TokenId> prompt;
    if (!history.empty() && rng.Bernoulli(0.35)) {
      const auto& prev =
          history[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(history.size()) - 1))];
      size_t keep = static_cast<size_t>(
          std::min<int64_t>(static_cast<int64_t>(prev.size()), rng.UniformInt(16, 512)));
      prompt.assign(prev.begin(), prev.begin() + static_cast<ptrdiff_t>(keep));
    }
    while (static_cast<int64_t>(prompt.size()) < len) {
      prompt.push_back(static_cast<TokenId>(rng.UniformInt(100, 30000)));
    }
    history.push_back(prompt);
    spec.prompt = std::move(prompt);
    sim.ScheduleAt(spec.arrival, [&engine, &result, &mix, spec] {
      engine.Submit(spec, nullptr, [&result, &mix](const flowserve::Sequence& seq) {
        ++result.completed;
        mix(seq.request_id);
        mix(static_cast<uint64_t>(seq.first_token_time));
        mix(static_cast<uint64_t>(seq.finish_time));
      });
    });
  }
  sim.Run();
  const flowserve::EngineStats& stats = engine.stats();
  result.steps = stats.steps;
  result.prefill_tokens = stats.prefill_tokens_processed;
  result.attended_tokens = stats.prefill_attended_tokens;
  result.decode_tokens = stats.decode_tokens_generated;
  result.reused_tokens = stats.reused_tokens;
  result.preemptions = stats.preemptions;
  result.max_decode_step = stats.max_decode_step;
  result.npu_busy = stats.npu_busy;
  result.timeline_hash = hash;
  result.end_time = sim.Now();
  return result;
}

struct GoldenCase {
  uint64_t seed;
  bool adaptive;
  bool pic;
  GoldenResult expect;
};

// Captured from the pre-refactor engine at commit ed15be4 (see /tmp note in
// the PR description): three seeds covering static chunking, the adaptive
// chunk controller, and position-independent caching.
const GoldenCase kGoldenCases[] = {
    {1ull, false, false,
     {1980, 33852, 17324365, 3282, 1472, 8, 40, 19036812, 5523138010, 0x358423cef76c9a98ull,
      6713015462}},
    {42ull, true, false,
     {1872, 32643, 16701199, 2887, 1328, 7, 40, 16740723, 5227001412, 0x865bca279ab76d73ull,
      6624205926}},
    {1337ull, true, true,
     {2168, 37115, 19204159, 3496, 560, 13, 40, 18449702, 6055942013, 0x33aa4ed1e8c0a975ull,
      7254044811}},
};

TEST(EngineSchedGoldenTest, FcfsParityIsBitIdentical) {
  for (const GoldenCase& c : kGoldenCases) {
    SCOPED_TRACE("seed=" + std::to_string(c.seed) + " adaptive=" + std::to_string(c.adaptive) +
                 " pic=" + std::to_string(c.pic));
    GoldenResult r = RunGoldenWorkload(c.seed, c.adaptive, c.pic);
    EXPECT_EQ(r.steps, c.expect.steps);
    EXPECT_EQ(r.prefill_tokens, c.expect.prefill_tokens);
    EXPECT_EQ(r.attended_tokens, c.expect.attended_tokens);
    EXPECT_EQ(r.decode_tokens, c.expect.decode_tokens);
    EXPECT_EQ(r.reused_tokens, c.expect.reused_tokens);
    EXPECT_EQ(r.preemptions, c.expect.preemptions);
    EXPECT_EQ(r.completed, c.expect.completed);
    EXPECT_EQ(r.max_decode_step, c.expect.max_decode_step);
    EXPECT_EQ(r.npu_busy, c.expect.npu_busy);
    EXPECT_EQ(r.timeline_hash, c.expect.timeline_hash);
    EXPECT_EQ(r.end_time, c.expect.end_time);
  }
}

// ---------------------------------------------------------------------------
// Policy factory
// ---------------------------------------------------------------------------

TEST(SchedPolicyFactoryTest, BuildsEveryKnownPolicy) {
  for (const char* name : {"fcfs", "slo", "priority-preempt"}) {
    sched::SchedConfig config;
    config.policy = name;
    auto policy = sched::MakeSchedPolicy(config);
    ASSERT_TRUE(policy.ok()) << policy.status().ToString();
    EXPECT_EQ((*policy)->name(), name);
  }
}

TEST(SchedPolicyFactoryTest, RejectsUnknownPolicy) {
  sched::SchedConfig config;
  config.policy = "shortest-job-first";
  auto policy = sched::MakeSchedPolicy(config);
  EXPECT_FALSE(policy.ok());
  EXPECT_EQ(policy.status().code(), StatusCode::kInvalidArgument);
}

TEST(SchedPolicyFactoryTest, FcfsNeverWantsShedChecks) {
  sched::FcfsPolicy fcfs;
  EXPECT_FALSE(fcfs.WantsShedChecks());
  Sequence seq;
  EXPECT_FALSE(fcfs.AdmissionMayPreempt(seq));
  // Default verdict is always OK (fcfs never sheds), even past a deadline.
  seq.deadline = 1;
  EXPECT_TRUE(fcfs.ShedVerdict(seq, MsToNs(100), 0).ok());
}

// ---------------------------------------------------------------------------
// Admission ordering
// ---------------------------------------------------------------------------

Sequence MakeSeq(workload::RequestId id, int priority, TimeNs enqueue, TimeNs deadline = 0) {
  Sequence seq;
  seq.request_id = id;
  seq.priority = priority;
  seq.enqueue_time = enqueue;
  seq.deadline = deadline;
  seq.state = SeqState::kQueued;
  return seq;
}

TEST(FcfsPolicyTest, AdmissionOrdersByPriorityThenEnqueueTime) {
  sched::FcfsPolicy policy;
  Sequence a = MakeSeq(1, 1, 100);
  Sequence b = MakeSeq(2, 0, 300);  // higher class wins despite later enqueue
  Sequence c = MakeSeq(3, 0, 200);  // ...but earlier enqueue wins within class
  std::deque<Sequence*> ready = {&a, &b, &c};
  EXPECT_EQ((*policy.NextAdmission(ready, 0))->request_id, 3);
  ready = {&a, &b};
  EXPECT_EQ((*policy.NextAdmission(ready, 0))->request_id, 2);
  ready = {&a};
  EXPECT_EQ((*policy.NextAdmission(ready, 0))->request_id, 1);
}

TEST(SloPolicyTest, AdmissionIsEarliestDeadlineFirst) {
  sched::SchedConfig config;
  config.policy = "slo";
  sched::SloPolicy policy(config);
  Sequence a = MakeSeq(1, 0, 100, SToNs(9));
  Sequence b = MakeSeq(2, 2, 300, SToNs(3));  // earliest deadline, worst class
  Sequence c = MakeSeq(3, 1, 200, 0);               // no deadline = last
  std::deque<Sequence*> ready = {&a, &b, &c};
  EXPECT_EQ((*policy.NextAdmission(ready, 0))->request_id, 2);
  ready = {&a, &c};
  EXPECT_EQ((*policy.NextAdmission(ready, 0))->request_id, 1);
}

TEST(SloPolicyTest, AdmissionTiesFallBackToFcfsOrder) {
  sched::SchedConfig config;
  config.policy = "slo";
  sched::SloPolicy policy(config);
  // Same deadline: priority breaks the tie, then enqueue time.
  Sequence a = MakeSeq(1, 1, 100, SToNs(5));
  Sequence b = MakeSeq(2, 0, 300, SToNs(5));
  std::deque<Sequence*> ready = {&a, &b};
  EXPECT_EQ((*policy.NextAdmission(ready, 0))->request_id, 2);
  // No deadlines at all degenerates to pure fcfs.
  Sequence d = MakeSeq(4, 1, 50);
  Sequence e = MakeSeq(5, 1, 40);
  ready = {&d, &e};
  EXPECT_EQ((*policy.NextAdmission(ready, 0))->request_id, 5);
}

// ---------------------------------------------------------------------------
// Chunk bounding
// ---------------------------------------------------------------------------

TEST(SloPolicyTest, BoundChunkFindsLargestChunkUnderBudget) {
  sched::SchedConfig config;
  config.policy = "slo";
  config.tbt_budget_ms = 30.0;
  sched::SloPolicy policy(config);
  Sequence seq = MakeSeq(1, 1, 0, SToNs(10));
  // 1 ms per token: the largest chunk under a 30 ms budget is exactly 30.
  auto linear = [](int64_t chunk) { return MsToNs(1) * chunk; };
  EXPECT_EQ(policy.BoundChunk(seq, 100, /*step_has_decode=*/true, linear), 30);
  // Already under budget: untouched.
  EXPECT_EQ(policy.BoundChunk(seq, 20, true, linear), 20);
  // Even a single token would blow the budget: skip prefill this step.
  auto huge = [](int64_t chunk) { return MsToNs(40) * std::max<int64_t>(chunk, 1); };
  EXPECT_EQ(policy.BoundChunk(seq, 100, true, huge), 0);
  // No decode in the step: nothing to protect, full chunk goes through.
  EXPECT_EQ(policy.BoundChunk(seq, 100, /*step_has_decode=*/false, huge), 100);
}

TEST(SloPolicyTest, BoundChunkWithoutBudgetIsIdentity) {
  sched::SchedConfig config;
  config.policy = "slo";
  config.tbt_budget_ms = 0.0;
  sched::SloPolicy policy(config);
  Sequence seq = MakeSeq(1, 1, 0);
  auto huge = [](int64_t chunk) { return MsToNs(1000) * std::max<int64_t>(chunk, 1); };
  EXPECT_EQ(policy.BoundChunk(seq, 512, true, huge), 512);
}

// ---------------------------------------------------------------------------
// Victim selection
// ---------------------------------------------------------------------------

TEST(FcfsPolicyTest, VictimIsLowestClassNewestArrival) {
  sched::FcfsPolicy policy;
  Sequence keep = MakeSeq(99, 0, 0);
  Sequence a = MakeSeq(1, 1, 100);
  Sequence b = MakeSeq(2, 2, 50);  // lowest class: preferred victim
  Sequence c = MakeSeq(3, 2, 80);  // same class, newer: wins
  std::vector<Sequence*> candidates = {&a, &b, &c};
  EXPECT_EQ(policy.PickVictim(candidates, keep, sched::PreemptReason::kDecodeGrowth), &c);
  EXPECT_EQ(policy.PickVictim({}, keep, sched::PreemptReason::kDecodeGrowth), nullptr);
}

TEST(SloPolicyTest, VictimHasFarthestDeadline) {
  sched::SchedConfig config;
  config.policy = "slo";
  sched::SloPolicy policy(config);
  Sequence keep = MakeSeq(99, 0, 0, SToNs(1));
  Sequence a = MakeSeq(1, 1, 100, SToNs(2));
  Sequence b = MakeSeq(2, 1, 50, SToNs(8));  // farthest deadline: victim
  Sequence c = MakeSeq(3, 1, 80, SToNs(5));
  std::vector<Sequence*> candidates = {&a, &b, &c};
  EXPECT_EQ(policy.PickVictim(candidates, keep, sched::PreemptReason::kDecodeGrowth), &b);
  // A sequence with no deadline is the first pick over any dated one.
  Sequence d = MakeSeq(4, 1, 10, 0);
  candidates = {&a, &b, &d};
  EXPECT_EQ(policy.PickVictim(candidates, keep, sched::PreemptReason::kDecodeGrowth), &d);
}

TEST(PriorityPolicyTest, AdmissionVictimMustBeStrictlyLowerClass) {
  sched::PriorityPreemptPolicy policy;
  Sequence keep = MakeSeq(99, 1, 0);
  Sequence peer = MakeSeq(1, 1, 100);   // equal class: protected from admission
  Sequence batch = MakeSeq(2, 2, 50);   // strictly lower class: eligible
  Sequence inter = MakeSeq(3, 0, 200);  // higher class: protected
  std::vector<Sequence*> candidates = {&peer, &batch, &inter};
  EXPECT_EQ(policy.PickVictim(candidates, keep, sched::PreemptReason::kAdmission), &batch);
  // No strictly-lower class available: decline rather than evict a peer.
  candidates = {&peer, &inter};
  EXPECT_EQ(policy.PickVictim(candidates, keep, sched::PreemptReason::kAdmission), nullptr);
  // Decode growth keeps the fcfs liveness rule: peers are fair game.
  EXPECT_EQ(policy.PickVictim(candidates, keep, sched::PreemptReason::kDecodeGrowth), &peer);
  EXPECT_TRUE(policy.AdmissionMayPreempt(keep));
}

// ---------------------------------------------------------------------------
// Shed verdicts
// ---------------------------------------------------------------------------

TEST(SloPolicyTest, ShedVerdictExpiredAndUnmeetable) {
  sched::SchedConfig config;
  config.policy = "slo";
  sched::SloPolicy policy(config);
  Sequence none = MakeSeq(1, 1, 0, 0);
  EXPECT_TRUE(policy.ShedVerdict(none, SToNs(100), SToNs(100)).ok());

  Sequence dated = MakeSeq(2, 1, 0, SToNs(5));
  // Comfortably meetable.
  EXPECT_TRUE(policy.ShedVerdict(dated, SToNs(1), SToNs(1)).ok());
  // Expired outright.
  EXPECT_EQ(policy.ShedVerdict(dated, SToNs(6), 0).code(), StatusCode::kDeadlineExceeded);
  // Not yet expired, but the remaining-service lower bound overshoots.
  EXPECT_EQ(policy.ShedVerdict(dated, SToNs(4), SToNs(2)).code(),
            StatusCode::kDeadlineExceeded);
}

TEST(SloPolicyTest, ShedVerdictRespectsConfigGates) {
  sched::SchedConfig config;
  config.policy = "slo";
  config.shed_expired = false;
  config.shed_unmeetable = false;
  sched::SloPolicy policy(config);
  Sequence dated = MakeSeq(1, 1, 0, SToNs(5));
  EXPECT_TRUE(policy.ShedVerdict(dated, SToNs(6), SToNs(100)).ok());
}

// ---------------------------------------------------------------------------
// Engine-level behaviour
// ---------------------------------------------------------------------------

EngineConfig TinyEngineConfig() {
  EngineConfig config;
  config.model = model::ModelSpec::Tiny1B();
  config.parallelism = {1, 1, 1};
  config.enable_chunked_prefill = true;
  return config;
}

workload::RequestSpec MakeSpec(workload::RequestId id, int64_t prompt_len, int64_t decode_len,
                               TimeNs deadline = 0, int priority = 1) {
  workload::RequestSpec spec;
  spec.id = id;
  spec.decode_len = decode_len;
  spec.deadline = deadline;
  spec.priority = priority;
  spec.prompt.reserve(static_cast<size_t>(prompt_len));
  for (int64_t i = 0; i < prompt_len; ++i) {
    spec.prompt.push_back(static_cast<TokenId>(1000 + (id * 7919 + i * 31) % 20000));
  }
  return spec;
}

TEST(EngineSchedTest, SloShedsExpiredQueuedRequestExactlyOnce) {
  sim::Simulator sim;
  EngineConfig config = TinyEngineConfig();
  config.sched.policy = "slo";
  Engine engine(&sim, config);

  int completions = 0;
  int errors = 0;
  Status last_error;
  bool missed_completion_deadline = false;

  // Request 1: deadline of 1 ns — expired the moment it reaches the ready
  // queue. Request 2: generous deadline — must complete normally.
  workload::RequestSpec doomed = MakeSpec(1, 600, 30, /*deadline=*/1);
  workload::RequestSpec fine = MakeSpec(2, 200, 10, /*deadline=*/SToNs(300));
  engine.Submit(
      doomed, nullptr, [&](const Sequence&) { ++completions; },
      [&](const Sequence& seq, const Status& status) {
        ++errors;
        last_error = status;
        EXPECT_EQ(seq.request_id, 1);
      });
  engine.Submit(
      fine, nullptr,
      [&](const Sequence& seq) {
        ++completions;
        missed_completion_deadline = seq.finish_time > seq.deadline;
      },
      [&](const Sequence&, const Status&) { ++errors; });
  sim.Run();

  EXPECT_EQ(errors, 1);
  EXPECT_EQ(completions, 1);
  EXPECT_EQ(last_error.code(), StatusCode::kDeadlineExceeded);
  EXPECT_FALSE(missed_completion_deadline);
  EXPECT_EQ(engine.stats().shed, 1);
  EXPECT_GE(engine.stats().deadline_misses, 1);
  EXPECT_EQ(engine.stats().completed, 1);
  EXPECT_TRUE(engine.idle());
}

TEST(EngineSchedTest, SloShedsRequestThatExpiresMidDecode) {
  sim::Simulator sim;
  EngineConfig config = TinyEngineConfig();
  config.sched.policy = "slo";
  // Only shed on observed expiry, so the request is allowed to start decoding
  // and is caught in flight rather than rejected up front as unmeetable.
  config.sched.shed_unmeetable = false;
  Engine engine(&sim, config);

  int completions = 0;
  int errors = 0;
  int64_t generated_at_shed = -1;
  // 5000 decode tokens cannot finish within 500 ms on Tiny1B; the sequence
  // must be shed while decoding.
  workload::RequestSpec spec = MakeSpec(1, 128, 5000, MsToNs(500));
  engine.Submit(
      spec, nullptr, [&](const Sequence&) { ++completions; },
      [&](const Sequence& seq, const Status& status) {
        ++errors;
        generated_at_shed = seq.generated;
        EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
      });
  sim.Run();

  EXPECT_EQ(errors, 1);
  EXPECT_EQ(completions, 0);
  EXPECT_GT(generated_at_shed, 0) << "expected the shed to interrupt an in-flight decode";
  EXPECT_LT(generated_at_shed, 5000);
  EXPECT_EQ(engine.stats().shed, 1);
  EXPECT_TRUE(engine.idle());
}

// Shared workload for the TBT-bounding comparison: one short interactive
// request decoding while a train of long prompts prefills behind it.
EngineStats RunTbtWorkload(const std::string& policy, double tbt_budget_ms) {
  sim::Simulator sim;
  EngineConfig config = TinyEngineConfig();
  config.adaptive_chunking = false;
  config.prefill_chunk_tokens = 8192;  // no mechanical chunk cap to hide behind
  config.max_tokens_per_step = 16384;
  config.sched.policy = policy;
  config.sched.tbt_budget_ms = tbt_budget_ms;
  Engine engine(&sim, config);

  int completions = 0;
  workload::RequestSpec inter = MakeSpec(1, 64, 400);
  const int kLongPrompts = 4;
  sim.ScheduleAt(0, [&engine, &completions, inter] {
    engine.Submit(inter, nullptr, [&](const Sequence&) { ++completions; });
  });
  for (int i = 0; i < kLongPrompts; ++i) {
    workload::RequestSpec spec = MakeSpec(static_cast<workload::RequestId>(i + 2), 6000, 4);
    spec.arrival = MsToNs(200 + 150 * i);
    sim.ScheduleAt(spec.arrival, [&engine, &completions, spec] {
      engine.Submit(spec, nullptr, [&](const Sequence&) { ++completions; });
    });
  }
  sim.Run();
  EXPECT_EQ(completions, 1 + kLongPrompts);
  return engine.stats();
}

TEST(EngineSchedTest, SloBoundsMaxDecodeStepUnderTbtBudget) {
  const double kBudgetMs = 15.0;
  EngineStats fcfs = RunTbtWorkload("fcfs", 0.0);
  EngineStats slo = RunTbtWorkload("slo", kBudgetMs);

  // fcfs happily schedules a 6000-token chunk next to the running decode, so
  // some decode-bearing step far exceeds the budget; slo caps every mixed
  // step's predicted duration at the budget.
  EXPECT_GT(fcfs.max_decode_step, MsToNs(kBudgetMs));
  EXPECT_LE(slo.max_decode_step, MsToNs(kBudgetMs));
  EXPECT_LT(slo.max_decode_step, fcfs.max_decode_step);
  EXPECT_EQ(slo.tbt_violations, 0);
  // Nothing had a deadline, so the slo run must not shed anything.
  EXPECT_EQ(slo.shed, 0);
}

TEST(EngineSchedTest, SloRunsAreBitIdenticalPerSeed) {
  auto run = [] {
    sim::Simulator sim;
    EngineConfig config = TinyEngineConfig();
    config.sched.policy = "slo";
    config.sched.tbt_budget_ms = 25.0;
    Engine engine(&sim, config);
    Rng rng(271828);
    uint64_t hash = 1469598103934665603ull;
    auto mix = [&hash](uint64_t v) {
      hash ^= v;
      hash *= 1099511628211ull;
    };
    for (int i = 0; i < 24; ++i) {
      workload::RequestSpec spec =
          MakeSpec(static_cast<workload::RequestId>(i + 1), rng.UniformInt(64, 900),
                   rng.UniformInt(4, 80), /*deadline=*/SToNs(rng.Uniform(0.2, 4.0)));
      spec.arrival = SToNs(rng.Uniform(0, 2));
      sim.ScheduleAt(spec.arrival, [&engine, &mix, spec] {
        engine.Submit(
            spec, nullptr,
            [&mix](const Sequence& seq) {
              mix(seq.request_id * 2);
              mix(static_cast<uint64_t>(seq.finish_time));
            },
            [&mix](const Sequence& seq, const Status&) {
              mix(seq.request_id * 2 + 1);
              mix(static_cast<uint64_t>(seq.finish_time));
            });
      });
    }
    sim.Run();
    mix(static_cast<uint64_t>(engine.stats().shed));
    mix(static_cast<uint64_t>(sim.Now()));
    return hash;
  };
  EXPECT_EQ(run(), run());
}

TEST(EngineSchedTest, PriorityPreemptEvictsLowerClassOnAdmission) {
  auto run = [](const std::string& policy, TimeNs* inter_first_token) {
    sim::Simulator sim;
    EngineConfig config = TinyEngineConfig();
    config.sched.policy = policy;
    config.kv_block_capacity_override = 40;  // 640 KV tokens: forced contention
    Engine engine(&sim, config);
    int completions = 0;
    workload::RequestSpec batch = MakeSpec(1, 400, 100, 0, /*priority=*/2);
    workload::RequestSpec inter = MakeSpec(2, 300, 20, 0, /*priority=*/0);
    inter.arrival = MsToNs(100);
    engine.Submit(batch, nullptr, [&](const Sequence&) { ++completions; });
    sim.ScheduleAt(inter.arrival, [&engine, &completions, inter, inter_first_token] {
      engine.Submit(
          inter,
          [inter_first_token](const Sequence& seq) { *inter_first_token = seq.first_token_time; },
          [&completions](const Sequence&) { ++completions; });
    });
    sim.Run();
    EXPECT_EQ(completions, 2);
    return engine.stats();
  };

  TimeNs fcfs_first_token = 0;
  TimeNs preempt_first_token = 0;
  EngineStats fcfs = run("fcfs", &fcfs_first_token);
  EngineStats preempt = run("priority-preempt", &preempt_first_token);

  // fcfs admission never steals KV from running work, so the interactive
  // request waits for the batch job; priority-preempt evicts it instead.
  EXPECT_EQ(fcfs.preemptions, 0);
  EXPECT_GE(preempt.preemptions, 1);
  EXPECT_GT(fcfs_first_token, 0);
  EXPECT_GT(preempt_first_token, 0);
  EXPECT_LT(preempt_first_token, fcfs_first_token);
}

}  // namespace
}  // namespace deepserve::flowserve
