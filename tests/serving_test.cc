#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <vector>

#include "common/time_units.h"
#include "common/types.h"
#include "distflow/distflow.h"
#include "hw/cluster.h"
#include "serving/cluster_manager.h"
#include "serving/heatmap.h"
#include "serving/job_executor.h"
#include "serving/predictor.h"
#include "serving/task_executor.h"
#include "sim/simulator.h"
#include "workload/tracegen.h"

namespace deepserve::serving {
namespace {

using workload::RequestSpec;

// ---------------- Heatmap ----------------

TEST(PdHeatmapTest, BucketLookupAndSign) {
  PdHeatmap map({1024, 4096}, {0.1, 1.0});
  map.Add(512, 0.05, 1.5);    // row 0, col 0
  map.Add(2048, 0.5, -0.4);   // row 1, col 1
  EXPECT_GT(map.Value(800, 0.08), 0);
  EXPECT_LT(map.Value(4000, 0.9), 0);
  EXPECT_TRUE(map.PreferDisaggregated(700, 35));    // ratio 0.05 -> cell (0,0)
  EXPECT_FALSE(map.PreferDisaggregated(2048, 1024));
}

TEST(PdHeatmapTest, OutOfRangeClampsToLastBucket) {
  PdHeatmap map({1024}, {1.0});
  map.Add(999999, 50.0, 2.0);
  EXPECT_GT(map.Value(1, 0.001), 0);  // single cell caught everything
}

TEST(PdHeatmapTest, ElementWiseCombineAcrossRps) {
  PdHeatmap map({1024}, {1.0});
  map.Add(512, 0.5, 1.0);   // RPS level 1
  map.Add(512, 0.5, -0.2);  // RPS level 2
  EXPECT_NEAR(map.Value(512, 0.5), 0.8, 1e-9);
}

TEST(PdHeatmapTest, SerializeParseRoundTrip) {
  PdHeatmap map = PdHeatmap::Default();
  auto parsed = PdHeatmap::Parse(map.Serialize());
  ASSERT_TRUE(parsed.ok());
  EXPECT_EQ(parsed->rows(), map.rows());
  EXPECT_EQ(parsed->cols(), map.cols());
  EXPECT_DOUBLE_EQ(parsed->SignAgreement(map), 1.0);
}

TEST(PdHeatmapTest, ParseRejectsGarbage) {
  EXPECT_FALSE(PdHeatmap::Parse("").ok());
  EXPECT_FALSE(PdHeatmap::Parse("2 2\n1 2\n").ok());
}

TEST(PdHeatmapTest, DefaultMatchesPaperObservations) {
  PdHeatmap map = PdHeatmap::Default();
  // Long prefill + short decode -> disaggregated.
  EXPECT_TRUE(map.PreferDisaggregated(8192, 256));
  // Short prefill + long decode -> colocated.
  EXPECT_FALSE(map.PreferDisaggregated(256, 1024));
  // Asymmetry: positive magnitudes dominate negative ones.
  double max_pos = 0;
  double max_neg = 0;
  for (size_t r = 0; r < map.rows(); ++r) {
    for (size_t c = 0; c < map.cols(); ++c) {
      max_pos = std::max(max_pos, map.cell(r, c));
      max_neg = std::max(max_neg, -map.cell(r, c));
    }
  }
  EXPECT_GT(max_pos, max_neg);
}

// ---------------- Predictors ----------------

TEST(PredictorTest, OracleIsExact) {
  OraclePredictor oracle;
  RequestSpec spec;
  spec.decode_len = 321;
  EXPECT_EQ(oracle.Predict(spec), 321);
}

TEST(PredictorTest, NoisyAccuracyApproximatelyHolds) {
  NoisyPredictor predictor(0.9, 7);
  RequestSpec spec;
  spec.decode_len = 200;
  int exact = 0;
  const int n = 5000;
  for (int i = 0; i < n; ++i) {
    if (predictor.Predict(spec) == 200) {
      ++exact;
    }
  }
  // Wrong draws can coincide with 200 occasionally; accept a band.
  EXPECT_NEAR(static_cast<double>(exact) / n, 0.9, 0.03);
}

TEST(PredictorTest, ZeroAccuracyStillInRange) {
  NoisyPredictor predictor(0.0, 11, 8, 4096);
  RequestSpec spec;
  spec.decode_len = 100;
  for (int i = 0; i < 500; ++i) {
    int64_t p = predictor.Predict(spec);
    EXPECT_GE(p, 7);
    EXPECT_LE(p, 4097);
  }
}

TEST(PredictorTest, ConstantPredictor) {
  ConstantPredictor predictor(256);
  RequestSpec spec;
  spec.decode_len = 9999;
  EXPECT_EQ(predictor.Predict(spec), 256);
}

// ---------------- TaskExecutor + JobExecutor ----------------

flowserve::EngineConfig SmallEngine(flowserve::EngineRole role) {
  flowserve::EngineConfig config;
  config.model = model::ModelSpec::Tiny1B();
  config.parallelism = {1, 1, 1};
  config.role = role;
  config.kv_block_capacity_override = 8192;
  return config;
}

RequestSpec MakeRequest(workload::RequestId id, int64_t prefill, int64_t decode,
                        TokenId base = 500) {
  RequestSpec spec;
  spec.id = id;
  spec.decode_len = decode;
  for (int64_t i = 0; i < prefill; ++i) {
    spec.prompt.push_back(base + static_cast<TokenId>(i % 9001));
  }
  return spec;
}

class ServingTest : public ::testing::Test {
 protected:
  ServingTest() {}

  JobExecutor MakeJe(SchedulingPolicy policy) {
    JeConfig config;
    config.policy = policy;
    config.load_balance_slack = 4;
    return JobExecutor(&sim_, config, PdHeatmap::Default(), MakeOraclePredictor());
  }

  std::unique_ptr<TaskExecutor> MakeTe(TeId id, flowserve::EngineRole role) {
    TeConfig config;
    config.id = id;
    config.engine = SmallEngine(role);
    return std::make_unique<TaskExecutor>(&sim_, std::move(config));
  }

  sim::Simulator sim_;
};

TEST_F(ServingTest, UnifiedTaskCompletesThroughTe) {
  auto te = MakeTe(1, flowserve::EngineRole::kColocated);
  bool done = false;
  te->SubmitUnified(MakeRequest(1, 256, 16),
                    {nullptr, [&](const flowserve::Sequence&) { done = true; }, nullptr});
  sim_.Run();
  EXPECT_TRUE(done);
}

TEST_F(ServingTest, PdPairHandoffCompletesRequest) {
  auto prefill = MakeTe(1, flowserve::EngineRole::kPrefillOnly);
  auto decode = MakeTe(2, flowserve::EngineRole::kDecodeOnly);
  TimeNs first = 0;
  TimeNs finish = 0;
  prefill->SubmitPrefill(
      MakeRequest(1, 512, 64), decode.get(),
      {[&](const flowserve::Sequence& seq) { first = seq.first_token_time; },
       [&](const flowserve::Sequence& seq) { finish = seq.finish_time; }, nullptr});
  sim_.Run();
  EXPECT_GT(first, 0);
  EXPECT_GT(finish, first);
  // Work split across the two engines.
  EXPECT_GT(prefill->engine().stats().prefill_tokens_processed, 0);
  EXPECT_EQ(prefill->engine().stats().decode_tokens_generated, 0);
  EXPECT_EQ(decode->engine().stats().decode_tokens_generated, 63);
}

// The decode-side sequence must inherit the request's service class and
// explicit-cache id across the PD handoff: priority drives the decode
// engine's admission/preemption order, and context_id drives PreserveById at
// completion. (Regression: SubmitPrefilled dropped both.)
TEST_F(ServingTest, PdHandoffPreservesPriorityAndContextId) {
  auto prefill = MakeTe(1, flowserve::EngineRole::kPrefillOnly);
  auto decode = MakeTe(2, flowserve::EngineRole::kDecodeOnly);
  auto spec = MakeRequest(1, 512, 16);
  spec.priority = 2;
  spec.context_id = "ctx-parity";
  int priority_seen = -1;
  std::string context_seen;
  prefill->SubmitPrefill(spec, decode.get(),
                         {nullptr,
                          [&](const flowserve::Sequence& seq) {
                            priority_seen = seq.priority;
                            context_seen = seq.context_id;
                          },
                          nullptr});
  sim_.Run();
  EXPECT_EQ(priority_seen, 2);
  EXPECT_EQ(context_seen, "ctx-parity");
  // The preserved-by-id context is now matchable on the decode engine.
  EXPECT_TRUE(decode->engine().rtc().MatchByID("ctx-parity").hit());
}

TEST_F(ServingTest, JobAndTaskRecordsForColocatedRoute) {
  auto je = MakeJe(SchedulingPolicy::kCombined);
  auto te = MakeTe(1, flowserve::EngineRole::kColocated);
  je.AddColocatedTe(te.get());
  bool done = false;
  je.HandleRequest(MakeRequest(1, 256, 8), {nullptr, [&](const flowserve::Sequence&) { done = true; }, nullptr});
  sim_.Run();
  EXPECT_TRUE(done);
  ASSERT_EQ(je.jobs().size(), 1u);
  EXPECT_EQ(je.jobs()[0].state, JobState::kCompleted);
  ASSERT_EQ(je.tasks().size(), 1u);
  EXPECT_EQ(je.tasks()[0].type, TaskType::kUnified);
  EXPECT_EQ(je.tasks()[0].state, TaskState::kCompleted);
}

TEST_F(ServingTest, DisaggregatedJobCreatesTwoTasks) {
  auto je = MakeJe(SchedulingPolicy::kCombined);
  auto prefill = MakeTe(1, flowserve::EngineRole::kPrefillOnly);
  auto decode = MakeTe(2, flowserve::EngineRole::kDecodeOnly);
  je.AddPrefillTe(prefill.get());
  je.AddDecodeTe(decode.get());
  bool done = false;
  // Long prefill, short decode: the heatmap must route this to the PD pair.
  je.HandleRequest(MakeRequest(1, 4096, 32), {nullptr, [&](const flowserve::Sequence&) { done = true; }, nullptr});
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(je.stats().routed_disaggregated, 1);
  ASSERT_EQ(je.tasks().size(), 2u);
  EXPECT_EQ(je.tasks()[0].type, TaskType::kPrefill);
  EXPECT_EQ(je.tasks()[1].type, TaskType::kDecode);
  EXPECT_EQ(je.tasks()[0].state, TaskState::kCompleted);
  EXPECT_EQ(je.tasks()[1].state, TaskState::kCompleted);
}

TEST_F(ServingTest, PdAwareRoutesByShape) {
  auto je = MakeJe(SchedulingPolicy::kCombined);
  auto coloc = MakeTe(1, flowserve::EngineRole::kColocated);
  auto prefill = MakeTe(2, flowserve::EngineRole::kPrefillOnly);
  auto decode = MakeTe(3, flowserve::EngineRole::kDecodeOnly);
  je.AddColocatedTe(coloc.get());
  je.AddPrefillTe(prefill.get());
  je.AddDecodeTe(decode.get());
  // Long prefill / short decode -> disaggregated; the opposite -> colocated.
  je.HandleRequest(MakeRequest(1, 8192, 64), {nullptr, nullptr, nullptr});
  je.HandleRequest(MakeRequest(2, 256, 512), {nullptr, nullptr, nullptr});
  sim_.Run();
  EXPECT_EQ(je.stats().routed_disaggregated, 1);
  EXPECT_EQ(je.stats().routed_colocated, 1);
}

TEST_F(ServingTest, RoundRobinAlternatesSlots) {
  auto je = MakeJe(SchedulingPolicy::kRoundRobin);
  auto te1 = MakeTe(1, flowserve::EngineRole::kColocated);
  auto te2 = MakeTe(2, flowserve::EngineRole::kColocated);
  je.AddColocatedTe(te1.get());
  je.AddColocatedTe(te2.get());
  for (int i = 0; i < 6; ++i) {
    je.HandleRequest(MakeRequest(static_cast<workload::RequestId>(i + 1), 64, 4), {nullptr, nullptr, nullptr});
  }
  sim_.Run();
  EXPECT_EQ(te1->engine().stats().submitted, 3);
  EXPECT_EQ(te2->engine().stats().submitted, 3);
}

TEST_F(ServingTest, LocalityAwareRoutesSharedPrefixToSameTe) {
  auto je = MakeJe(SchedulingPolicy::kCombined);
  auto te1 = MakeTe(1, flowserve::EngineRole::kColocated);
  auto te2 = MakeTe(2, flowserve::EngineRole::kColocated);
  je.AddColocatedTe(te1.get());
  je.AddColocatedTe(te2.get());
  // Two families with distinct shared prefixes, staggered in time so later
  // members can reuse the KV the earlier ones preserved.
  for (int i = 0; i < 4; ++i) {
    sim_.ScheduleAt(SToNs(static_cast<double>(i) * 2.0), [&je, i] {
      je.HandleRequest(MakeRequest(static_cast<workload::RequestId>(10 + i), 512, 2, 1000), {nullptr, nullptr, nullptr});
      je.HandleRequest(MakeRequest(static_cast<workload::RequestId>(20 + i), 512, 2, 25000), {nullptr, nullptr, nullptr});
    });
  }
  sim_.Run();
  EXPECT_GT(je.stats().locality_hits, 0);
  // Each prefix family consistently landed on one TE: both TEs got work and
  // their RTC caches saw reuse.
  EXPECT_GT(te1->engine().stats().submitted, 0);
  EXPECT_GT(te2->engine().stats().submitted, 0);
  EXPECT_GT(te1->engine().stats().reused_tokens + te2->engine().stats().reused_tokens, 0);
}

TEST_F(ServingTest, LoadAwareKicksInWhenUnbalanced) {
  JeConfig config;
  config.policy = SchedulingPolicy::kCombined;
  config.load_balance_slack = 0;  // any imbalance triggers load-aware
  JobExecutor je(&sim_, config, PdHeatmap::Default(), MakeOraclePredictor());
  auto te1 = MakeTe(1, flowserve::EngineRole::kColocated);
  auto te2 = MakeTe(2, flowserve::EngineRole::kColocated);
  je.AddColocatedTe(te1.get());
  je.AddColocatedTe(te2.get());
  // Same prefix every time: pure locality would pile everything on one TE,
  // but load-aware spreads once the queue gap exceeds the slack.
  for (int i = 0; i < 8; ++i) {
    je.HandleRequest(MakeRequest(static_cast<workload::RequestId>(i + 1), 2048, 64, 777), {nullptr, nullptr, nullptr});
  }
  sim_.Run();
  EXPECT_GT(je.stats().load_decisions, 0);
  EXPECT_GT(te1->engine().stats().submitted, 0);
  EXPECT_GT(te2->engine().stats().submitted, 0);
}

TEST_F(ServingTest, RemoveTeStopsRouting) {
  auto je = MakeJe(SchedulingPolicy::kRoundRobin);
  auto te1 = MakeTe(1, flowserve::EngineRole::kColocated);
  auto te2 = MakeTe(2, flowserve::EngineRole::kColocated);
  je.AddColocatedTe(te1.get());
  je.AddColocatedTe(te2.get());
  je.RemoveTe(1);
  for (int i = 0; i < 4; ++i) {
    je.HandleRequest(MakeRequest(static_cast<workload::RequestId>(i + 1), 64, 2), {nullptr, nullptr, nullptr});
  }
  sim_.Run();
  EXPECT_EQ(te1->engine().stats().submitted, 0);
  EXPECT_EQ(te2->engine().stats().submitted, 4);
}

TEST_F(ServingTest, NonReadyTesAreSkipped) {
  auto je = MakeJe(SchedulingPolicy::kRoundRobin);
  auto te1 = MakeTe(1, flowserve::EngineRole::kColocated);
  auto te2 = MakeTe(2, flowserve::EngineRole::kColocated);
  te1->set_state(TeState::kLoading);
  je.AddColocatedTe(te1.get());
  je.AddColocatedTe(te2.get());
  je.HandleRequest(MakeRequest(1, 64, 2), {nullptr, nullptr, nullptr});
  sim_.Run();
  EXPECT_EQ(te1->engine().stats().submitted, 0);
  EXPECT_EQ(te2->engine().stats().submitted, 1);
}

// ---------------- ClusterManager: scaling ----------------

class ScalingTest : public ::testing::Test {
 protected:
  ScalingTest()
      : cluster_(&sim_, MakeClusterConfig()),
        transfer_(&sim_, &cluster_, {}) {}

  static hw::ClusterConfig MakeClusterConfig() {
    hw::ClusterConfig config;
    config.num_machines = 8;
    config.machines_per_scaleup_domain = 4;
    return config;
  }

  ClusterManager MakeManager(ScalingOptimizations opts) {
    return ClusterManager(&sim_, &cluster_, &transfer_, opts);
  }

  sim::Simulator sim_;
  hw::Cluster cluster_;
  distflow::TransferEngine transfer_;
};

TEST_F(ScalingTest, CreateReadyTeAllocatesNpus) {
  auto manager = MakeManager({});
  auto te = manager.CreateReadyTe(SmallEngine(flowserve::EngineRole::kColocated));
  ASSERT_TRUE(te.ok());
  EXPECT_TRUE((*te)->ready());
  EXPECT_EQ((*te)->config().npus.size(), 1u);
  // Device accounting wired: engine KV traffic shows up on the NPU.
  bool done = false;
  (*te)->SubmitUnified(MakeRequest(1, 256, 8),
                       {nullptr, [&](const flowserve::Sequence&) { done = true; }, nullptr});
  sim_.Run();
  EXPECT_TRUE(done);
}

TEST_F(ScalingTest, NpuAllocationExhausts) {
  auto manager = MakeManager({});
  auto cfg = SmallEngine(flowserve::EngineRole::kColocated);
  cfg.parallelism = {8, 1, 1};
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(manager.CreateReadyTe(cfg).ok()) << i;
  }
  EXPECT_FALSE(manager.CreateReadyTe(cfg).ok());
  // Stopping one frees capacity.
  ASSERT_TRUE(manager.StopTe(1).ok());
  EXPECT_TRUE(manager.CreateReadyTe(cfg).ok());
}

TEST_F(ScalingTest, OptimizedPipelineIsMuchFasterThanBaseline) {
  auto run = [&](ScalingOptimizations opts, bool prewarm, bool preload) {
    sim::Simulator sim;
    hw::Cluster cluster(&sim, MakeClusterConfig());
    distflow::TransferEngine transfer(&sim, &cluster, {});
    ClusterManager manager(&sim, &cluster, &transfer, opts);
    if (prewarm) {
      manager.ReservePrewarmedPods(4);
      manager.ReservePrewarmedTes(4);
    }
    if (preload) {
      manager.PreloadModelToDram(0, model::ModelSpec::Tiny1B());
      sim.Run();
    }
    ScaleRequest request;
    request.engine = SmallEngine(flowserve::EngineRole::kColocated);
    ScalingBreakdown breakdown;
    bool done = false;
    EXPECT_TRUE(manager
                    .ScaleUp(request,
                             [&](TaskExecutor* te, const ScalingBreakdown& b) {
                               breakdown = b;
                               done = te != nullptr;
                             })
                    .ok());
    sim.Run();
    EXPECT_TRUE(done);
    return breakdown;
  };
  ScalingBreakdown slow = run(ScalingOptimizations::AllOff(), false, false);
  ScalingBreakdown fast = run(ScalingOptimizations{}, true, true);
  EXPECT_TRUE(fast.used_prewarmed_pod);
  EXPECT_TRUE(fast.used_prewarmed_te);
  EXPECT_TRUE(fast.dram_hit);
  EXPECT_GT(slow.total(), 5 * fast.total());
  // Every stage individually improves.
  EXPECT_GT(slow.scaler_pre, fast.scaler_pre);
  EXPECT_GT(slow.te_pre_load, fast.te_pre_load);
  EXPECT_GT(slow.te_load, fast.te_load);
  EXPECT_GT(slow.te_post_load, fast.te_post_load);
  EXPECT_GT(slow.scaler_post, fast.scaler_post);
}

TEST_F(ScalingTest, DramMissStagesThroughSsd) {
  auto manager = MakeManager({});
  ScaleRequest request;
  request.engine = SmallEngine(flowserve::EngineRole::kColocated);
  ScalingBreakdown breakdown;
  ASSERT_TRUE(manager
                  .ScaleUp(request, [&](TaskExecutor*, const ScalingBreakdown& b) {
                    breakdown = b;
                  })
                  .ok());
  sim_.Run();
  EXPECT_FALSE(breakdown.dram_hit);
  EXPECT_EQ(manager.stats().dram_misses, 1);
  // A second scale-up of the same model now hits the page cache and loads
  // faster (SSD hop gone).
  ScalingBreakdown second;
  ASSERT_TRUE(manager
                  .ScaleUp(request, [&](TaskExecutor*, const ScalingBreakdown& b) {
                    second = b;
                  })
                  .ok());
  sim_.Run();
  EXPECT_TRUE(second.dram_hit);
  EXPECT_LT(second.te_load, breakdown.te_load);
}

TEST_F(ScalingTest, NpuForkSkipsLocalLoad) {
  auto manager = MakeManager({});
  auto source = manager.CreateReadyTe(SmallEngine(flowserve::EngineRole::kColocated));
  ASSERT_TRUE(source.ok());
  ScaleRequest request;
  request.engine = SmallEngine(flowserve::EngineRole::kColocated);
  request.fork_source = (*source)->id();
  ScalingBreakdown breakdown;
  ASSERT_TRUE(manager
                  .ScaleUp(request, [&](TaskExecutor*, const ScalingBreakdown& b) {
                    breakdown = b;
                  })
                  .ok());
  sim_.Run();
  EXPECT_TRUE(breakdown.used_npu_fork);
  EXPECT_EQ(manager.stats().npu_forks, 1);
}

TEST_F(ScalingTest, ScaleUpManyForksInParallel) {
  auto manager = MakeManager({});
  manager.ReservePrewarmedPods(64);
  manager.ReservePrewarmedTes(64);
  auto source = manager.CreateReadyTe(SmallEngine(flowserve::EngineRole::kColocated));
  ASSERT_TRUE(source.ok());
  ScaleRequest request;
  request.engine = SmallEngine(flowserve::EngineRole::kColocated);
  request.fork_source = (*source)->id();
  std::vector<TaskExecutor*> created;
  DurationNs elapsed = 0;
  ASSERT_TRUE(manager
                  .ScaleUpMany(request, 32,
                               [&](std::vector<TaskExecutor*> tes, DurationNs d) {
                                 created = std::move(tes);
                                 elapsed = d;
                               })
                  .ok());
  sim_.Run();
  EXPECT_EQ(created.size(), 32u);
  // "scale up to 64 instances in parallel within seconds": 32 forks of a
  // small model complete in single-digit seconds.
  EXPECT_LT(NsToS(elapsed), 10.0);
  for (TaskExecutor* te : created) {
    EXPECT_TRUE(te->ready());
  }
}

TEST_F(ScalingTest, ScaleUpManyRequiresSource) {
  auto manager = MakeManager({});
  ScaleRequest request;
  request.engine = SmallEngine(flowserve::EngineRole::kColocated);
  EXPECT_FALSE(manager.ScaleUpMany(request, 4, nullptr).ok());
}

TEST_F(ScalingTest, PredictivePreloadFillsPageCaches) {
  auto manager = MakeManager({});
  manager.PredictivePreload({model::ModelSpec::Tiny1B(), model::ModelSpec::Llama3_8B()});
  sim_.Run();
  for (int m = 0; m < cluster_.num_machines(); ++m) {
    EXPECT_TRUE(cluster_.machine(m)->page_cache().Contains("tiny-1b"));
    EXPECT_TRUE(cluster_.machine(m)->page_cache().Contains("llama3-8b"));
  }
}

TEST_F(ScalingTest, AutoscalerAddsTesUnderLoad) {
  auto manager = MakeManager({});
  manager.ReservePrewarmedPods(8);
  manager.ReservePrewarmedTes(8);
  manager.PreloadModelToDram(0, model::ModelSpec::Tiny1B());
  sim_.Run();

  JeConfig je_config;
  je_config.policy = SchedulingPolicy::kLoadOnly;
  JobExecutor je(&sim_, je_config, PdHeatmap::Default(), MakeOraclePredictor());
  auto first = manager.CreateReadyTe(SmallEngine(flowserve::EngineRole::kColocated));
  ASSERT_TRUE(first.ok());
  je.AddColocatedTe(*first);

  AutoscalerConfig as_config;
  as_config.check_interval = MsToNs(500);
  as_config.scale_up_queue_depth = 8;
  as_config.scale_down_queue_depth = -1;  // growth only: assert on end state
  as_config.max_tes = 4;
  ScaleRequest request;
  request.engine = SmallEngine(flowserve::EngineRole::kColocated);
  manager.StartAutoscaler(&je, as_config, request);

  // Slam the system with enough work to trip the threshold.
  for (int i = 0; i < 64; ++i) {
    je.HandleRequest(MakeRequest(static_cast<workload::RequestId>(i + 1), 2048, 128,
                                 static_cast<TokenId>(100 + 37 * i)), {nullptr, nullptr, nullptr});
  }
  sim_.RunUntil(SToNs(120));
  manager.StopAutoscaler();
  sim_.Run();
  EXPECT_GT(manager.stats().scale_ups, 0);
  EXPECT_GT(je.colocated_count(), 1u);
}

}  // namespace
}  // namespace deepserve::serving
