#include <gtest/gtest.h>

#include <vector>

#include "common/time_units.h"
#include "common/types.h"
#include "hw/npu.h"
#include "model/cost_model.h"
#include "model/model_spec.h"
#include "model/tokenizer.h"

namespace deepserve::model {
namespace {

TEST(ModelSpecTest, ParamCountsInExpectedRange) {
  // Each preset's computed parameter count should land near its nameplate.
  EXPECT_NEAR(static_cast<double>(ModelSpec::Llama3_8B().ParamCount()), 8e9, 1.5e9);
  EXPECT_NEAR(static_cast<double>(ModelSpec::Llama2_13B().ParamCount()), 13e9, 2e9);
  EXPECT_NEAR(static_cast<double>(ModelSpec::Yi34B().ParamCount()), 34e9, 4e9);
  EXPECT_NEAR(static_cast<double>(ModelSpec::Llama3_70B().ParamCount()), 70e9, 8e9);
  EXPECT_NEAR(static_cast<double>(ModelSpec::Qwen2_72B().ParamCount()), 72e9, 8e9);
}

TEST(ModelSpecTest, WeightBytesIsFp16Params) {
  ModelSpec m = ModelSpec::Llama3_8B();
  EXPECT_EQ(m.WeightBytes(), static_cast<Bytes>(m.ParamCount()) * 2);
}

TEST(ModelSpecTest, KvBytesPerTokenUsesGqa) {
  ModelSpec m = ModelSpec::Llama3_8B();
  // 2 (K+V) * 32 layers * 8 kv heads * 128 dim * 2 bytes = 128 KiB/token.
  EXPECT_EQ(m.KvBytesPerToken(), 2ull * 32 * 8 * 128 * 2);
}

TEST(ModelSpecTest, PresetLookup) {
  EXPECT_TRUE(ModelSpec::Preset("llama3-8b").ok());
  EXPECT_TRUE(ModelSpec::Preset("34b").ok());
  EXPECT_EQ(ModelSpec::Preset("34b").value().name, "yi-34b");
  EXPECT_FALSE(ModelSpec::Preset("gpt-17").ok());
}

TEST(ModelSpecTest, WeightBytesPerNpuShardsOverTpPp) {
  ModelSpec m = ModelSpec::Llama3_70B();
  Bytes full = m.WeightBytes();
  EXPECT_EQ(WeightBytesPerNpu(m, {4, 1, 1}), full / 4);
  EXPECT_EQ(WeightBytesPerNpu(m, {4, 2, 1}), full / 8);
  EXPECT_EQ(WeightBytesPerNpu(m, {1, 1, 2}), full);  // DP replicates
}

TEST(AttendedTokensTest, ClosedForm) {
  EXPECT_EQ(AttendedTokens(0, 1), 1);
  EXPECT_EQ(AttendedTokens(0, 4), 10);  // 1+2+3+4
  EXPECT_EQ(AttendedTokens(100, 4), 400 + 10);
  EXPECT_EQ(AttendedTokens(0, 0), 0);
}

class CostModelTest : public ::testing::Test {
 protected:
  CostModelTest()
      : cost_(ModelSpec::Yi34B(), hw::NpuSpec::Gen2(), ParallelismConfig{4, 1, 1}) {}
  CostModel cost_;
};

TEST_F(CostModelTest, EmptyStepIsFree) {
  EXPECT_EQ(cost_.StepDuration(StepShape{}), 0);
}

TEST_F(CostModelTest, PrefillScalesSuperlinearlyWithPromptLength) {
  DurationNs t2k = cost_.PrefillDuration(2048);
  DurationNs t4k = cost_.PrefillDuration(4096);
  DurationNs t8k = cost_.PrefillDuration(8192);
  EXPECT_GT(t4k, 2 * t2k - MsToNs(2));  // at least linear
  EXPECT_GT(t8k, 2 * t4k);                        // quadratic term bites
}

TEST_F(CostModelTest, PrefillLatencyPlausibleFor34BTp4) {
  // A 2K prefill of a 34B model on 4 x Gen2 NPUs should land in the hundreds
  // of milliseconds (the paper's TTFTs in Fig. 4 are in this regime).
  double t_ms = NsToMs(cost_.PrefillDuration(2048));
  EXPECT_GT(t_ms, 50.0);
  EXPECT_LT(t_ms, 2000.0);
}

TEST_F(CostModelTest, DecodeStepIsMemoryBoundAndPlausible) {
  // Single-sequence decode: dominated by the weight read.
  double t_ms = NsToMs(cost_.DecodeStepDuration(1, 2048));
  EXPECT_GT(t_ms, 5.0);
  EXPECT_LT(t_ms, 60.0);
}

TEST_F(CostModelTest, DecodeBatchingAmortizesWeightRead) {
  // 32-way batched decode must be far cheaper than 32 single steps.
  DurationNs batched = cost_.DecodeStepDuration(32, 2048);
  DurationNs single = cost_.DecodeStepDuration(1, 2048);
  EXPECT_LT(batched, 8 * single);
  EXPECT_GT(batched, single);  // KV reads still grow with batch
}

TEST_F(CostModelTest, DecodeCostGrowsWithContext) {
  EXPECT_GT(cost_.DecodeStepDuration(16, 8192), cost_.DecodeStepDuration(16, 512));
}

TEST_F(CostModelTest, MoreTpReducesStepTime) {
  CostModel tp8(ModelSpec::Yi34B(), hw::NpuSpec::Gen2(), ParallelismConfig{8, 1, 1});
  EXPECT_LT(tp8.PrefillDuration(4096), cost_.PrefillDuration(4096));
}

TEST_F(CostModelTest, KvBytesPerNpuShards) {
  EXPECT_EQ(cost_.KvBytesPerTokenPerNpu(), cost_.KvBytesPerToken() / 4);
}

TEST_F(CostModelTest, MaxKvTokensPositiveAndBounded) {
  int64_t tokens = cost_.MaxKvTokensPerNpu(0.9);
  EXPECT_GT(tokens, 10000);   // tens of thousands of tokens fit
  EXPECT_LT(tokens, 5000000);
}

TEST_F(CostModelTest, MaxKvTokensZeroWhenWeightsDontFit) {
  // 70B on a single Gen1 NPU (32 GiB) cannot even hold its weights.
  CostModel tight(ModelSpec::Llama3_70B(), hw::NpuSpec::Gen1(), ParallelismConfig{1, 1, 1});
  EXPECT_EQ(tight.MaxKvTokensPerNpu(0.9), 0);
}

TEST_F(CostModelTest, ChunkedStepMixesPrefillAndDecode) {
  StepShape mixed;
  mixed.prefill_tokens = 512;
  mixed.prefill_attended_tokens = AttendedTokens(0, 512);
  mixed.decode_seqs = 16;
  mixed.decode_context_tokens = 16 * 2048;
  DurationNs both = cost_.StepDuration(mixed);

  StepShape decode_only;
  decode_only.decode_seqs = 16;
  decode_only.decode_context_tokens = 16 * 2048;
  // Piggybacked prefill slows the decode step (the interference PD
  // disaggregation removes).
  EXPECT_GT(both, cost_.StepDuration(decode_only));
}

// Parameterized sweep: step duration is monotone in every StepShape field.
class CostModelMonotoneTest : public ::testing::TestWithParam<int> {};

TEST_P(CostModelMonotoneTest, MonotoneInPrefillTokens) {
  CostModel cost(ModelSpec::Llama3_8B(), hw::NpuSpec::Gen2(), ParallelismConfig{1, 1, 1});
  int64_t base = GetParam();
  EXPECT_LE(cost.PrefillDuration(base), cost.PrefillDuration(base * 2));
  EXPECT_LE(cost.DecodeStepDuration(base / 64 + 1, 1024),
            cost.DecodeStepDuration(base / 32 + 2, 1024));
}

INSTANTIATE_TEST_SUITE_P(Sweep, CostModelMonotoneTest,
                         ::testing::Values(64, 256, 1024, 4096, 16384));

TEST(TokenizerTest, Deterministic) {
  Tokenizer t1;
  Tokenizer t2;
  auto a = t1.Encode("the quick brown fox jumps over the lazy dog");
  auto b = t2.Encode("the quick brown fox jumps over the lazy dog");
  EXPECT_EQ(a, b);
}

TEST(TokenizerTest, PrefixProperty) {
  Tokenizer t;
  auto full = t.Encode("system prompt about cloud serving then a user question");
  auto prefix = t.Encode("system prompt about cloud serving");
  ASSERT_LE(prefix.size(), full.size());
  for (size_t i = 0; i < prefix.size(); ++i) {
    EXPECT_EQ(prefix[i], full[i]);
  }
}

TEST(TokenizerTest, LongWordsSplit) {
  Tokenizer t;
  auto ids = t.Encode("internationalization");
  EXPECT_GE(ids.size(), 3u);  // 20 chars / 6-char pieces
}

TEST(TokenizerTest, PunctuationGetsByteIds) {
  Tokenizer t;
  auto ids = t.Encode("a,b");
  ASSERT_EQ(ids.size(), 3u);
  EXPECT_EQ(ids[1], static_cast<TokenId>(','));
}

TEST(TokenizerTest, IdsStayInVocab) {
  Tokenizer t(1000);
  auto ids = t.Encode("some words of varying lengths including sesquipedalian ones");
  for (TokenId id : ids) {
    EXPECT_GE(id, 0);
    EXPECT_LT(id, 1000);
  }
}

TEST(TokenizerTest, DecodeRoundTripsSeenText) {
  Tokenizer t;
  auto ids = t.Encode("hello world");
  EXPECT_EQ(t.Decode(ids), "hello world");
}

TEST(TokenizerTest, EncodeDurationScalesWithTokens) {
  Tokenizer t;
  EXPECT_GT(t.EncodeDuration(1000), t.EncodeDuration(10));
}

TEST(TokenizerTest, EmptyInput) {
  Tokenizer t;
  EXPECT_TRUE(t.Encode("").empty());
  EXPECT_TRUE(t.Encode("   \n\t ").empty());
}

}  // namespace
}  // namespace deepserve::model
