// Heterogeneous Gen1/Gen2 placement tests: the ClusterManager's cost-aware
// NPU allocation (cheapest generation whose HBM fits, graceful fallback), the
// per-TE generation/cost directory views, the JE's cost-aware dispatch
// narrowing, and randomized placement properties (never a non-fitting
// generation while a fitting one has room, never a stranded placeable job,
// creation order monotone in tokens-per-second-per-dollar).

#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "distflow/distflow.h"
#include "hw/cluster.h"
#include "hw/npu.h"
#include "model/cost_model.h"
#include "model/model_spec.h"
#include "serving/cluster_manager.h"
#include "serving/job_executor.h"
#include "serving/predictor.h"
#include "serving/task_executor.h"
#include "sim/simulator.h"
#include "workload/tracegen.h"

namespace deepserve {
namespace {

// A self-contained mixed-generation control plane over the given --npu-mix
// string, with one JE wired for TE-failure re-dispatch.
class HeteroBed {
 public:
  explicit HeteroBed(const std::string& mix, bool cost_aware_je = false,
                     std::unique_ptr<serving::DecodeLengthPredictor> predictor =
                         serving::MakeOraclePredictor()) {
    hw::ClusterConfig config;
    config.machine_specs = hw::ParseNpuMix(mix).value();
    config.num_machines = static_cast<int>(config.machine_specs.size());
    cluster_ = std::make_unique<hw::Cluster>(&sim_, config);
    transfer_ = std::make_unique<distflow::TransferEngine>(&sim_, cluster_.get(),
                                                           distflow::DistFlowConfig{});
    manager_ = std::make_unique<serving::ClusterManager>(&sim_, cluster_.get(),
                                                         transfer_.get());
    serving::JeConfig je_config;
    je_config.policy = serving::SchedulingPolicy::kLoadOnly;
    je_config.cost_aware = cost_aware_je;
    je_ = std::make_unique<serving::JobExecutor>(&sim_, je_config, serving::PdHeatmap::Default(),
                                                 std::move(predictor));
    manager_->AddFailureHandler([this](serving::TeId id) { je_->OnTeFailure(id); });
  }

  serving::TaskExecutor* AddColocatedTe(const flowserve::EngineConfig& config) {
    auto te = manager_->CreateReadyTe(config).value();
    je_->AddColocatedTe(te);
    endpoints_.push_back(te->id());
    return te;
  }

  void Link() {
    ASSERT_TRUE(transfer_->LinkCluster(endpoints_, nullptr).ok());
    sim_.Run();
  }

  sim::Simulator& sim() { return sim_; }
  serving::ClusterManager& manager() { return *manager_; }
  serving::JobExecutor& je() { return *je_; }

 private:
  sim::Simulator sim_;
  std::unique_ptr<hw::Cluster> cluster_;
  std::unique_ptr<distflow::TransferEngine> transfer_;
  std::unique_ptr<serving::ClusterManager> manager_;
  std::unique_ptr<serving::JobExecutor> je_;
  std::vector<distflow::EndpointId> endpoints_;
};

flowserve::EngineConfig EngineFor(const model::ModelSpec& model, int tp) {
  flowserve::EngineConfig config;
  config.model = model;
  config.parallelism = {tp, 1, 1};
  config.role = flowserve::EngineRole::kColocated;
  config.npu_spec_from_placement = true;
  return config;
}

workload::RequestSpec MakeRequest(workload::RequestId id, int64_t prefill, int64_t decode,
                                  TokenId base = 700) {
  workload::RequestSpec spec;
  spec.id = id;
  spec.decode_len = decode;
  for (int64_t i = 0; i < prefill; ++i) {
    spec.prompt.push_back(base + static_cast<TokenId>(i % 8000));
  }
  return spec;
}

// ---------------- ClusterManager placement ----------------

TEST(HeteroPlacementTest, PreviewPicksCheapestFittingGeneration) {
  HeteroBed bed("gen2:2,gen1:2");
  // Yi-34B TP4 fits both generations; Gen1's $/hr makes it the better
  // tokens-per-second-per-dollar even at half the bandwidth.
  serving::GenerationChoice choice =
      bed.manager().PreviewPlacement(EngineFor(model::ModelSpec::Yi34B(), 4));
  EXPECT_TRUE(choice.feasible);
  EXPECT_EQ(choice.generation, hw::NpuSpec::Gen1().name);
  EXPECT_GT(choice.tokens_per_dollar, 0.0);
}

TEST(HeteroPlacementTest, PreviewSkipsGenerationWhoseHbmCannotFit) {
  HeteroBed bed("gen1:2,gen2:2");
  // Llama3-70B TP4 needs ~35 GB of weights per NPU: over Gen1's 32 GB HBM,
  // comfortably inside Gen2's 64 GB.
  serving::GenerationChoice choice =
      bed.manager().PreviewPlacement(EngineFor(model::ModelSpec::Llama3_70B(), 4));
  EXPECT_TRUE(choice.feasible);
  EXPECT_EQ(choice.generation, hw::NpuSpec::Gen2().name);
}

TEST(HeteroPlacementTest, PreviewReportsInfeasibleWhenNothingFits) {
  HeteroBed bed("gen1:1,gen2:1");
  // Qwen2-72B TP1 wants ~144 GB on one NPU — no generation holds it.
  serving::GenerationChoice choice =
      bed.manager().PreviewPlacement(EngineFor(model::ModelSpec::Qwen2_72B(), 1));
  EXPECT_FALSE(choice.feasible);
}

TEST(HeteroPlacementTest, PreviewOnHomogeneousClusterNamesInstalledGeneration) {
  HeteroBed bed("gen2:2");
  serving::GenerationChoice choice =
      bed.manager().PreviewPlacement(EngineFor(model::ModelSpec::Yi34B(), 4));
  EXPECT_TRUE(choice.feasible);
  EXPECT_EQ(choice.generation, hw::NpuSpec::Gen2().name);
}

TEST(HeteroPlacementTest, AllocationOverflowsGracefullyToNextGeneration) {
  HeteroBed bed("gen2:1,gen1:1");
  flowserve::EngineConfig engine = EngineFor(model::ModelSpec::Yi34B(), 4);
  // The single Gen1 machine holds two TP4 TEs; the third must fall through
  // to Gen2 rather than fail.
  auto* first = bed.AddColocatedTe(engine);
  auto* second = bed.AddColocatedTe(engine);
  auto* third = bed.AddColocatedTe(engine);
  EXPECT_EQ(bed.manager().TeSpec(first->id()).name, hw::NpuSpec::Gen1().name);
  EXPECT_EQ(bed.manager().TeSpec(second->id()).name, hw::NpuSpec::Gen1().name);
  EXPECT_EQ(bed.manager().TeSpec(third->id()).name, hw::NpuSpec::Gen2().name);
  // The directory's cost view tracks each TE's actual silicon.
  EXPECT_GT(bed.manager().TeTokensPerDollar(first->id()),
            bed.manager().TeTokensPerDollar(third->id()));
  // npu_spec_from_placement rewrote each engine's spec to match.
  EXPECT_EQ(first->config().engine.npu_spec.name, hw::NpuSpec::Gen1().name);
  EXPECT_EQ(third->config().engine.npu_spec.name, hw::NpuSpec::Gen2().name);
}

TEST(HeteroPlacementTest, BlindPlacementFirstFitsTheExpensiveGeneration) {
  HeteroBed bed("gen2:2,gen1:2");
  serving::PlacementConfig placement;
  placement.hetero_aware = false;
  bed.manager().SetPlacement(placement);
  auto* te = bed.AddColocatedTe(EngineFor(model::ModelSpec::Yi34B(), 4));
  // Generation-blind first-fit starts at machine 0 — the Gen2 group.
  EXPECT_EQ(bed.manager().TeSpec(te->id()).name, hw::NpuSpec::Gen2().name);
}

// ---------------- JE cost-aware dispatch ----------------

TEST(HeteroDispatchTest, NarrowsDispatchToTheCheapGeneration) {
  HeteroBed bed("gen1:2,gen2:2", /*cost_aware_je=*/true);
  flowserve::EngineConfig engine = EngineFor(model::ModelSpec::Tiny1B(), 8);
  engine.kv_block_capacity_override = 4096;
  auto* gen1_a = bed.AddColocatedTe(engine);  // one TE per machine at TP8
  auto* gen1_b = bed.AddColocatedTe(engine);
  auto* gen2 = bed.AddColocatedTe(engine);
  bed.Link();
  ASSERT_EQ(bed.manager().TeSpec(gen1_b->id()).name, hw::NpuSpec::Gen1().name);
  ASSERT_EQ(bed.manager().TeSpec(gen2->id()).name, hw::NpuSpec::Gen2().name);

  std::set<workload::RequestId> completed;
  for (int i = 0; i < 8; ++i) {
    auto spec = MakeRequest(static_cast<workload::RequestId>(i + 1), 512, 64,
                            static_cast<TokenId>(100 + 131 * i));
    bed.je().HandleRequest(spec,
                           {nullptr, [&completed, id = spec.id](const flowserve::Sequence&) {
                             completed.insert(id);
                           }, nullptr});
  }
  bed.sim().Run();
  EXPECT_EQ(completed.size(), 8u);
  // Every dispatch narrowed to the Gen1 TEs; the Gen2 TE never saw work.
  EXPECT_GT(bed.je().stats().cost_narrowed, 0);
  EXPECT_EQ(bed.je().stats().cost_fallbacks, 0);
  EXPECT_EQ(gen2->engine().stats().completed, 0);
  EXPECT_GT(gen1_a->engine().stats().completed + gen1_b->engine().stats().completed, 0);
}

TEST(HeteroDispatchTest, FallsBackToFullFleetWhenNoGenerationFitsPrediction) {
  // A predictor so pessimistic that no TE's roofline KV capacity can fit
  // any request's predicted context; the actual decode lengths stay small.
  HeteroBed bed("gen1:2,gen2:2", /*cost_aware_je=*/true,
                std::make_unique<serving::ConstantPredictor>(int64_t{1} << 40));
  flowserve::EngineConfig engine = EngineFor(model::ModelSpec::Tiny1B(), 8);
  engine.kv_block_capacity_override = 4096;  // the engine itself serves fine
  bed.AddColocatedTe(engine);
  bed.AddColocatedTe(engine);
  bed.Link();

  std::set<workload::RequestId> completed;
  for (int i = 0; i < 4; ++i) {
    auto spec = MakeRequest(static_cast<workload::RequestId>(i + 1), 512, 64,
                            static_cast<TokenId>(100 + 177 * i));
    bed.je().HandleRequest(spec,
                           {nullptr, [&completed, id = spec.id](const flowserve::Sequence&) {
                             completed.insert(id);
                           }, nullptr});
  }
  bed.sim().Run();
  // Better a tight TE than a stranded request: dispatch fell back to the
  // unfiltered fleet and everything still completed.
  EXPECT_EQ(completed.size(), 4u);
  EXPECT_GT(bed.je().stats().cost_fallbacks, 0);
  EXPECT_EQ(bed.je().stats().cost_narrowed, 0);
}

// ---------------- Randomized placement properties ----------------

struct ModelChoice {
  model::ModelSpec model;
  int tp;
};

std::vector<ModelChoice> FeasibleModels() {
  return {
      {model::ModelSpec::Yi34B(), 4},      // fits both generations
      {model::ModelSpec::Yi34B(), 2},      // Gen2 only (~34 GB/NPU)
      {model::ModelSpec::Llama3_70B(), 4}, // Gen2 only (~35 GB/NPU)
      {model::ModelSpec::Llama2_13B(), 1}, // fits both
      {model::ModelSpec::Llama3_8B(), 1},  // fits both
      {model::ModelSpec::Qwen2_72B(), 1},  // fits nothing (~144 GB/NPU)
  };
}

std::string RandomMix(Rng& rng) {
  // 1..3 machines of each generation, either order, occasionally one-sided.
  int gen1 = static_cast<int>(rng.UniformInt(0, 3));
  int gen2 = static_cast<int>(rng.UniformInt(0, 3));
  if (gen1 == 0 && gen2 == 0) {
    gen1 = 1;
  }
  std::string a = gen1 > 0 ? "gen1:" + std::to_string(gen1) : "";
  std::string b = gen2 > 0 ? "gen2:" + std::to_string(gen2) : "";
  if (a.empty()) {
    return b;
  }
  if (b.empty()) {
    return a;
  }
  return rng.UniformInt(0, 1) == 0 ? a + "," + b : b + "," + a;
}

class HeteroPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HeteroPropertyTest, PreviewNeverPicksGenerationWhoseHbmCannotFit) {
  Rng rng(GetParam());
  for (int iter = 0; iter < 20; ++iter) {
    std::string mix = RandomMix(rng);
    HeteroBed bed(mix);
    ModelChoice pick = FeasibleModels()[static_cast<size_t>(
        rng.UniformInt(0, static_cast<int64_t>(FeasibleModels().size()) - 1))];
    flowserve::EngineConfig engine = EngineFor(pick.model, pick.tp);
    serving::GenerationChoice choice = bed.manager().PreviewPlacement(engine);

    // Reference: which generations fit, and the best fitting score.
    std::vector<hw::NpuSpec> gens = {hw::NpuSpec::Gen1(), hw::NpuSpec::Gen2()};
    bool any_fits = false;
    double best_fitting_score = 0.0;
    std::set<std::string> fitting;
    for (const hw::NpuSpec& gen : gens) {
      if (mix.find(gen.name == hw::NpuSpec::Gen1().name ? "gen1" : "gen2") ==
          std::string::npos) {
        continue;  // generation not installed in this mix
      }
      if (model::FitsHbm(pick.model, gen, engine.parallelism,
                         bed.manager().placement().min_kv_tokens_per_npu,
                         engine.hbm_utilization)) {
        any_fits = true;
        fitting.insert(gen.name);
        best_fitting_score = std::max(
            best_fitting_score,
            model::TokensPerSecondPerDollar(pick.model, gen, engine.parallelism));
      }
    }
    EXPECT_EQ(choice.feasible, any_fits)
        << "mix " << mix << " model " << pick.model.name << " tp " << pick.tp;
    if (any_fits) {
      // The choice fits, and no fitting generation scores better (monotone
      // in tokens-per-second-per-dollar).
      EXPECT_TRUE(fitting.count(choice.generation) > 0)
          << "mix " << mix << " chose non-fitting " << choice.generation;
      EXPECT_DOUBLE_EQ(choice.tokens_per_dollar, best_fitting_score)
          << "mix " << mix << " model " << pick.model.name;
    }
  }
}

TEST_P(HeteroPropertyTest, PlacementNeverStrandsAPlaceableJobAndOrdersByValue) {
  Rng rng(GetParam() ^ 0x9e3779b97f4a7c15ull);
  for (int iter = 0; iter < 6; ++iter) {
    std::string mix = RandomMix(rng);
    HeteroBed bed(mix);
    // Yi-34B TP4 fits both generations: every machine holds exactly two TEs,
    // so nothing may be stranded until the whole cluster is full.
    flowserve::EngineConfig engine = EngineFor(model::ModelSpec::Yi34B(), 4);
    int capacity = 2 * static_cast<int>(hw::ParseNpuMix(mix)->size());
    double last_score = -1.0;
    for (int i = 0; i < capacity; ++i) {
      auto te = bed.manager().CreateReadyTe(engine);
      ASSERT_TRUE(te.ok()) << "mix " << mix << " stranded TE " << i << " of " << capacity
                           << ": " << te.status().ToString();
      double score = bed.manager().TeTokensPerDollar((*te)->id());
      if (last_score >= 0.0) {
        // Creation order drains generations best-value-first.
        EXPECT_LE(score, last_score + 1e-9) << "mix " << mix << " TE " << i;
      }
      last_score = score;
    }
    auto overflow = bed.manager().CreateReadyTe(engine);
    EXPECT_FALSE(overflow.ok()) << "mix " << mix << " overfilled the cluster";
    if (!overflow.ok()) {
      EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted) << "mix " << mix;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeteroPropertyTest, ::testing::Values(1ull, 7ull, 23ull));

}  // namespace
}  // namespace deepserve
