#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <memory>
#include <set>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "common/small_fn.h"
#include "common/sorted_view.h"
#include "common/stats.h"
#include "common/status.h"
#include "common/time_units.h"
#include "common/types.h"

namespace deepserve {
namespace {

TEST(TypesTest, TimeConversionsRoundTrip) {
  EXPECT_EQ(MsToNs(1), 1000000);
  EXPECT_EQ(SToNs(2.5), 2500000000ll);
  EXPECT_DOUBLE_EQ(NsToMs(MsToNs(42)), 42.0);
  EXPECT_DOUBLE_EQ(NsToS(SToNs(0.125)), 0.125);
}

TEST(TypesTest, ByteHelpers) {
  EXPECT_EQ(GiB(1), 1ull << 30);
  EXPECT_EQ(MiB(2), 2ull << 20);
  EXPECT_DOUBLE_EQ(BytesToGiB(GiB(3.5)), 3.5);
}

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("no such TE");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "no such TE");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such TE");
}

TEST(StatusTest, AllErrorFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes;
  codes.insert(InvalidArgumentError("").code());
  codes.insert(NotFoundError("").code());
  codes.insert(AlreadyExistsError("").code());
  codes.insert(ResourceExhaustedError("").code());
  codes.insert(FailedPreconditionError("").code());
  codes.insert(UnavailableError("").code());
  codes.insert(InternalError("").code());
  codes.insert(UnimplementedError("").code());
  codes.insert(DeadlineExceededError("").code());
  codes.insert(AbortedError("").code());
  EXPECT_EQ(codes.size(), 10u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = InvalidArgumentError("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
}

Result<int> Half(int x) {
  if (x % 2 != 0) {
    return InvalidArgumentError("odd");
  }
  return x / 2;
}

Status UseHalf(int x, int* out) {
  DS_ASSIGN_OR_RETURN(*out, Half(x));
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UseHalf(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_EQ(UseHalf(7, &out).code(), StatusCode::kInvalidArgument);
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.Next(), b.Next());
  }
}

TEST(RngTest, ForkIndependent) {
  Rng a(123);
  Rng fork = a.Fork();
  // The fork must not replay the parent stream.
  Rng parent_copy(123);
  (void)parent_copy.Next();  // parent consumed one draw to fork
  EXPECT_NE(fork.Next(), parent_copy.Next());
}

TEST(RngTest, UniformIntInRange) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = rng.UniformInt(-3, 5);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 5);
  }
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    double v = rng.NextDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(RngTest, ExponentialMeanApproximatelyInverseRate) {
  Rng rng(11);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(rng.Exponential(4.0));
  }
  EXPECT_NEAR(stats.mean(), 0.25, 0.01);
}

TEST(RngTest, NormalMoments) {
  Rng rng(13);
  OnlineStats stats;
  for (int i = 0; i < 20000; ++i) {
    stats.Add(rng.Normal(10.0, 2.0));
  }
  EXPECT_NEAR(stats.mean(), 10.0, 0.1);
  EXPECT_NEAR(stats.stddev(), 2.0, 0.1);
}

TEST(RngTest, ZipfSkewsTowardLowRanks) {
  Rng rng(17);
  int low = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) {
    if (rng.Zipf(100, 1.2) < 10) {
      ++low;
    }
  }
  // With s=1.2 the top-10 ranks carry well over half the mass.
  EXPECT_GT(low, n / 2);
}

TEST(RngTest, ZipfStaysInRange) {
  Rng rng(19);
  for (int i = 0; i < 5000; ++i) {
    int64_t v = rng.Zipf(64, 1.1);
    EXPECT_GE(v, 0);
    EXPECT_LT(v, 64);
  }
}

TEST(OnlineStatsTest, BasicMoments) {
  OnlineStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    s.Add(v);
  }
  EXPECT_EQ(s.count(), 4u);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.variance(), 5.0 / 3.0, 1e-9);
}

TEST(OnlineStatsTest, MergeMatchesSequential) {
  OnlineStats a;
  OnlineStats b;
  OnlineStats all;
  Rng rng(23);
  for (int i = 0; i < 500; ++i) {
    double v = rng.Normal(5, 3);
    (i % 2 == 0 ? a : b).Add(v);
    all.Add(v);
  }
  a.Merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-6);
}

TEST(SampleStatsTest, ExactPercentiles) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.Percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 100.0);
  EXPECT_NEAR(s.p50(), 50.5, 1e-9);
  EXPECT_NEAR(s.p99(), 99.01, 1e-9);
}

TEST(SampleStatsTest, EmptyIsZero) {
  SampleStats s;
  EXPECT_DOUBLE_EQ(s.p50(), 0.0);
  EXPECT_DOUBLE_EQ(s.mean(), 0.0);
}

TEST(SampleStatsTest, FractionBelow) {
  SampleStats s;
  for (int i = 1; i <= 10; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.FractionBelow(5.0), 0.5);
  EXPECT_DOUBLE_EQ(s.FractionBelow(0.5), 0.0);
  EXPECT_DOUBLE_EQ(s.FractionBelow(10.0), 1.0);
}

TEST(SampleStatsTest, InterleavedAddAndQuery) {
  SampleStats s;
  s.Add(3.0);
  EXPECT_DOUBLE_EQ(s.p50(), 3.0);
  s.Add(1.0);
  s.Add(2.0);
  EXPECT_DOUBLE_EQ(s.p50(), 2.0);  // re-sorts after mutation
}

TEST(HistogramTest, BucketsAndOverflow) {
  Histogram h(0.0, 10.0, 10);
  h.Add(-1.0);
  h.Add(0.0);
  h.Add(5.5);
  h.Add(9.999);
  h.Add(10.0);
  h.Add(42.0);
  EXPECT_EQ(h.total(), 6u);
  EXPECT_EQ(h.underflow(), 1u);
  EXPECT_EQ(h.overflow(), 2u);
  EXPECT_EQ(h.counts()[0], 1u);
  EXPECT_EQ(h.counts()[5], 1u);
  EXPECT_EQ(h.counts()[9], 1u);
  EXPECT_FALSE(h.ToString().empty());
}

TEST(SortedViewTest, SortedKeysOfMap) {
  std::unordered_map<std::string, int> m = {{"b", 2}, {"a", 1}, {"c", 3}};
  EXPECT_EQ(SortedKeys(m), (std::vector<std::string>{"a", "b", "c"}));
}

TEST(SortedViewTest, SortedValuesOfSet) {
  std::unordered_set<int> s = {30, 10, 20};
  EXPECT_EQ(SortedValues(s), (std::vector<int>{10, 20, 30}));
  EXPECT_EQ(SortedKeys(s), SortedValues(s));  // set alias drains identically
}

TEST(SortedViewTest, SortedItemsPairsByKey) {
  std::unordered_map<int, std::string> m = {{2, "two"}, {1, "one"}, {3, "three"}};
  auto items = SortedItems(m);
  ASSERT_EQ(items.size(), 3u);
  EXPECT_EQ(items[0], (std::pair<int, std::string>{1, "one"}));
  EXPECT_EQ(items[1], (std::pair<int, std::string>{2, "two"}));
  EXPECT_EQ(items[2], (std::pair<int, std::string>{3, "three"}));
}

TEST(SortedViewTest, CustomComparator) {
  std::unordered_map<int, int> m = {{1, 10}, {2, 20}, {3, 30}};
  auto desc = [](int a, int b) { return a > b; };
  EXPECT_EQ(SortedKeys(m, desc), (std::vector<int>{3, 2, 1}));
  auto items = SortedItems(m, desc);
  EXPECT_EQ(items.front().first, 3);
  EXPECT_EQ(items.back().first, 1);
}

TEST(SortedViewTest, EmptyContainers) {
  std::unordered_map<int, int> m;
  std::unordered_set<int> s;
  EXPECT_TRUE(SortedKeys(m).empty());
  EXPECT_TRUE(SortedItems(m).empty());
  EXPECT_TRUE(SortedValues(s).empty());
}

TEST(SmallFnTest, EmptyByDefault) {
  common::SmallFn fn;
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_TRUE(fn == nullptr);
}

TEST(SmallFnTest, SmallCaptureStoredInlineAndInvocable) {
  int hits = 0;
  int* p = &hits;
  common::SmallFn fn([p] { ++*p; });
  EXPECT_TRUE(static_cast<bool>(fn));
  EXPECT_TRUE(fn.is_inline());
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(SmallFnTest, OversizedCaptureFallsBackToHeap) {
  std::array<int64_t, 16> big{};  // 128 bytes > kInlineBytes
  big[7] = 42;
  int64_t seen = 0;
  common::SmallFn fn([big, &seen] { seen = big[7]; });
  EXPECT_FALSE(fn.is_inline());
  fn();
  EXPECT_EQ(seen, 42);
}

TEST(SmallFnTest, MoveTransfersOwnershipForBothStorageModes) {
  for (bool heap : {false, true}) {
    auto counter = std::make_shared<int>(0);
    common::SmallFn src;
    if (heap) {
      std::array<int64_t, 16> pad{};
      src = common::SmallFn([counter, pad] { *counter += 1 + static_cast<int>(pad[0]); });
    } else {
      src = common::SmallFn([counter] { ++*counter; });
    }
    EXPECT_EQ(src.is_inline(), !heap);
    common::SmallFn dst = std::move(src);
    EXPECT_FALSE(static_cast<bool>(src));
    EXPECT_TRUE(static_cast<bool>(dst));
    dst();
    EXPECT_EQ(*counter, 1);
    // Destroying the moved-to wrapper releases the capture.
    dst.Reset();
    EXPECT_EQ(counter.use_count(), 1);
  }
}

TEST(SmallFnTest, ResetDestroysCapture) {
  auto token = std::make_shared<int>(7);
  common::SmallFn fn([token] {});
  EXPECT_EQ(token.use_count(), 2);
  fn.Reset();
  EXPECT_EQ(token.use_count(), 1);
  EXPECT_FALSE(static_cast<bool>(fn));
}

TEST(SmallFnTest, MoveAssignmentReleasesPreviousCapture) {
  auto old_token = std::make_shared<int>(1);
  auto new_token = std::make_shared<int>(2);
  common::SmallFn fn([old_token] {});
  fn = common::SmallFn([new_token] {});
  EXPECT_EQ(old_token.use_count(), 1);
  EXPECT_EQ(new_token.use_count(), 2);
}

}  // namespace
}  // namespace deepserve
