#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <utility>
#include <vector>

#include "common/types.h"
#include "sim/simulator.h"

namespace deepserve::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_TRUE(sim.Empty());
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  EXPECT_EQ(sim.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulatorTest, FifoTieBreakAtEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAt(100, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  TimeNs inner_time = -1;
  sim.ScheduleAt(50, [&] {
    sim.ScheduleAfter(25, [&] { inner_time = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(inner_time, 75);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) {
      sim.ScheduleAfter(1, chain);
    }
  };
  sim.ScheduleAfter(1, chain);
  sim.Run();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(sim.Now(), 10);
}

TEST(SimulatorTest, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.ScheduleAt(10, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(sim.Empty());
}

TEST(SimulatorTest, CancelUnknownIdIsNoop) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(kInvalidEventId));
  EXPECT_FALSE(sim.Cancel(99999));
}

TEST(SimulatorTest, DoubleCancelReturnsFalse) {
  Simulator sim;
  EventId id = sim.ScheduleAt(10, [] {});
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
  sim.Run();
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  std::vector<TimeNs> fired;
  sim.ScheduleAt(10, [&] { fired.push_back(10); });
  sim.ScheduleAt(20, [&] { fired.push_back(20); });
  sim.ScheduleAt(30, [&] { fired.push_back(30); });
  EXPECT_EQ(sim.RunUntil(20), 2u);
  EXPECT_EQ(sim.Now(), 20);
  EXPECT_EQ(fired, (std::vector<TimeNs>{10, 20}));
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.Run();
  EXPECT_EQ(fired.back(), 30);
}

TEST(SimulatorTest, RunUntilAdvancesPastEmptyQueue) {
  Simulator sim;
  sim.RunUntil(1000);
  EXPECT_EQ(sim.Now(), 1000);
}

TEST(SimulatorTest, StepFiresExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1, [&] { ++fired; });
  sim.ScheduleAt(2, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, StepSkipsCancelled) {
  Simulator sim;
  bool fired = false;
  EventId a = sim.ScheduleAt(1, [&] { fired = true; });
  sim.ScheduleAt(2, [&] { fired = true; });
  sim.Cancel(a);
  EXPECT_TRUE(sim.Step());
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.Now(), 2);
}

TEST(SimulatorTest, PendingCountTracksCancellations) {
  Simulator sim;
  EventId a = sim.ScheduleAt(5, [] {});
  sim.ScheduleAt(6, [] {});
  EXPECT_EQ(sim.PendingEvents(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.PendingEvents(), 1u);
  EXPECT_FALSE(sim.Empty());
  sim.Run();
  EXPECT_TRUE(sim.Empty());
}

TEST(SimulatorTest, TotalFiredExcludesCancelled) {
  Simulator sim;
  EventId a = sim.ScheduleAt(1, [] {});
  sim.ScheduleAt(2, [] {});
  sim.Cancel(a);
  sim.Run();
  EXPECT_EQ(sim.TotalFired(), 1u);
}

// Regression: Cancel of an id that already fired must be a no-op. The old
// binary-heap core only checked the *global* pending count, so cancelling a
// fired id while other events were pending "succeeded" and decremented the
// count for an event still in the queue.
TEST(SimulatorTest, CancelAfterFireIsNoopWithPendingEvents) {
  Simulator sim;
  EventId fired_id = sim.ScheduleAt(1, [] {});
  sim.ScheduleAt(5, [] {});
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(sim.PendingEvents(), 1u);
  EXPECT_FALSE(sim.Cancel(fired_id));
  EXPECT_EQ(sim.PendingEvents(), 1u);
  EXPECT_FALSE(sim.Empty());
  EXPECT_EQ(sim.Run(), 1u);
  EXPECT_TRUE(sim.Empty());
}

// Regression: same bug, never-issued id while events are pending.
TEST(SimulatorTest, CancelUnknownIdWithPendingEventsIsNoop) {
  Simulator sim;
  sim.ScheduleAt(10, [] {});
  sim.ScheduleAt(20, [] {});
  EXPECT_FALSE(sim.Cancel(0xdeadbeefdeadbeefull));
  EXPECT_EQ(sim.PendingEvents(), 2u);
  EXPECT_EQ(sim.Run(), 2u);
}

// Regression: once a cancelled event's tombstone has been swept (its heap
// entry popped), the old core forgot the id entirely, so a later Cancel of the
// same id could "succeed" a second time against an unrelated pending event.
TEST(SimulatorTest, CancelAfterTombstoneSweepStaysNoop) {
  Simulator sim;
  EventId a = sim.ScheduleAt(1, [] {});
  sim.ScheduleAt(2, [] {});
  EXPECT_TRUE(sim.Cancel(a));
  sim.Run();  // sweeps a's tombstone
  sim.ScheduleAt(3, [] {});
  EXPECT_FALSE(sim.Cancel(a));
  EXPECT_EQ(sim.PendingEvents(), 1u);
  EXPECT_EQ(sim.Run(), 1u);
}

TEST(SimulatorTest, IsScheduledTracksLifecycle) {
  Simulator sim;
  EXPECT_FALSE(sim.IsScheduled(kInvalidEventId));
  EventId a = sim.ScheduleAt(10, [] {});
  EventId b = sim.ScheduleAt(20, [] {});
  EXPECT_TRUE(sim.IsScheduled(a));
  EXPECT_TRUE(sim.IsScheduled(b));
  sim.Cancel(b);
  EXPECT_FALSE(sim.IsScheduled(b));
  sim.Step();
  EXPECT_FALSE(sim.IsScheduled(a));
}

// Property: across 10k mixed schedule/cancel/step/run-until operations with a
// fixed seed, PendingEvents() equals the reference model's live-event count
// after every operation, Cancel agrees exactly with model liveness, and every
// firing is the model's earliest (time, insertion-order) live event.
TEST(SimulatorTest, PropertyPendingCountMatchesLiveEventsAcross10kOps) {
  Simulator sim;
  struct Model {
    // Live events ordered by (time, schedule order) — the firing order.
    std::map<std::pair<TimeNs, uint64_t>, EventId> order;
    std::map<EventId, std::pair<TimeNs, uint64_t>> by_id;
  } model;
  uint64_t schedule_counter = 0;
  uint64_t state = 2026;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  std::vector<EventId> all_ids;  // live, fired, and cancelled alike
  for (int op = 0; op < 10000; ++op) {
    uint64_t r = next() % 100;
    if (r < 55 || all_ids.empty()) {
      TimeNs t = sim.Now() + static_cast<TimeNs>(next() % 5000);
      uint64_t ord = schedule_counter++;
      auto holder = std::make_shared<EventId>(kInvalidEventId);
      EventId id = sim.ScheduleAt(t, [&model, &sim, holder, t, ord] {
        ASSERT_FALSE(model.order.empty()) << "fired an event the model lost";
        EXPECT_EQ(model.order.begin()->second, *holder)
            << "fired out of (time, FIFO) order";
        EXPECT_EQ(sim.Now(), t);
        model.order.erase({t, ord});
        model.by_id.erase(*holder);
      });
      *holder = id;
      model.order[{t, ord}] = id;
      model.by_id[id] = {t, ord};
      all_ids.push_back(id);
    } else if (r < 80) {
      EventId id = all_ids[next() % all_ids.size()];
      auto it = model.by_id.find(id);
      bool was_live = it != model.by_id.end();
      EXPECT_EQ(sim.Cancel(id), was_live);
      if (was_live) {
        model.order.erase(it->second);
        model.by_id.erase(it);
      }
    } else if (r < 92) {
      sim.Step();
    } else {
      sim.RunUntil(sim.Now() + static_cast<TimeNs>(next() % 2000));
    }
    ASSERT_EQ(sim.PendingEvents(), model.order.size()) << "after op " << op;
    ASSERT_EQ(sim.Empty(), model.order.empty());
  }
  sim.Run();
  EXPECT_TRUE(model.order.empty());
  EXPECT_TRUE(sim.Empty());
  EXPECT_EQ(sim.PendingEvents(), 0u);
}

TEST(PeriodicTaskTest, FiresAtFixedInterval) {
  Simulator sim;
  PeriodicTask task;
  std::vector<TimeNs> fires;
  task.Start(&sim, 10, [&] { fires.push_back(sim.Now()); });
  sim.RunUntil(35);
  EXPECT_EQ(fires, (std::vector<TimeNs>{10, 20, 30}));
  task.Stop();
  sim.Run();
  EXPECT_EQ(fires.size(), 3u);
  EXPECT_TRUE(sim.Empty());
}

TEST(PeriodicTaskTest, StopFromInsideCallbackHalts) {
  Simulator sim;
  PeriodicTask task;
  int fires = 0;
  task.Start(&sim, 10, [&] {
    if (++fires == 2) {
      task.Stop();
    }
  });
  sim.Run();
  EXPECT_EQ(fires, 2);
  EXPECT_TRUE(sim.Empty());
}

// Regression: Start() from inside the task's own callback used to fork a
// second event chain — the body's Start scheduled one firing and the
// still-running old Fire scheduled another — roughly doubling the rate.
TEST(PeriodicTaskTest, RestartFromCallbackKeepsSingleChain) {
  Simulator sim;
  PeriodicTask task;
  int fires = 0;
  task.Start(&sim, 10, [&] {
    ++fires;
    if (fires == 1) {
      task.Start(&sim, 10, [&] { ++fires; });
    }
  });
  sim.RunUntil(100);
  // One firing per interval: t = 10 (restart) then 20..100 on the new chain.
  EXPECT_EQ(fires, 10);
}

// Regression: the forked chain was also uncancellable — Stop() cancelled only
// the event id the new chain last wrote, so the orphan kept firing forever.
TEST(PeriodicTaskTest, RestartFromCallbackRemainsCancellable) {
  Simulator sim;
  PeriodicTask task;
  int fires = 0;
  task.Start(&sim, 10, [&] {
    ++fires;
    task.Start(&sim, 7, [&] { ++fires; });
  });
  sim.RunUntil(30);  // t = 10 restarts; the 7ns chain fires at 17 and 24
  EXPECT_EQ(fires, 3);
  task.Stop();
  sim.Run();
  EXPECT_EQ(fires, 3);
  EXPECT_TRUE(sim.Empty()) << "orphan chain left an uncancellable event";
}

TEST(PeriodicTaskTest, RestartReplacesIntervalAndCallback) {
  Simulator sim;
  PeriodicTask task;
  int a = 0;
  int b = 0;
  task.Start(&sim, 10, [&] { ++a; });
  sim.RunUntil(25);  // fires at 10, 20
  task.Start(&sim, 5, [&] { ++b; });
  sim.RunUntil(40);  // fires at 30, 35, 40
  EXPECT_EQ(a, 2);
  EXPECT_EQ(b, 3);
}

// Property: an arbitrary interleaving of schedules/cancels never fires events
// out of time order.
TEST(SimulatorTest, PropertyMonotonicFiringTimes) {
  Simulator sim;
  std::vector<TimeNs> times;
  uint64_t state = 12345;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  std::vector<EventId> ids;
  for (int i = 0; i < 500; ++i) {
    TimeNs t = static_cast<TimeNs>(next() % 10000);
    ids.push_back(sim.ScheduleAt(t, [&times, &sim] { times.push_back(sim.Now()); }));
    if (i % 3 == 0 && !ids.empty()) {
      sim.Cancel(ids[next() % ids.size()]);
    }
  }
  sim.Run();
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_LE(times[i - 1], times[i]);
  }
}

}  // namespace
}  // namespace deepserve::sim
