#include <gtest/gtest.h>

#include <vector>

#include "common/types.h"
#include "sim/simulator.h"

namespace deepserve::sim {
namespace {

TEST(SimulatorTest, StartsAtZero) {
  Simulator sim;
  EXPECT_EQ(sim.Now(), 0);
  EXPECT_TRUE(sim.Empty());
}

TEST(SimulatorTest, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.ScheduleAt(30, [&] { order.push_back(3); });
  sim.ScheduleAt(10, [&] { order.push_back(1); });
  sim.ScheduleAt(20, [&] { order.push_back(2); });
  EXPECT_EQ(sim.Run(), 3u);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.Now(), 30);
}

TEST(SimulatorTest, FifoTieBreakAtEqualTimestamps) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.ScheduleAt(100, [&order, i] { order.push_back(i); });
  }
  sim.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SimulatorTest, ScheduleAfterUsesCurrentTime) {
  Simulator sim;
  TimeNs inner_time = -1;
  sim.ScheduleAt(50, [&] {
    sim.ScheduleAfter(25, [&] { inner_time = sim.Now(); });
  });
  sim.Run();
  EXPECT_EQ(inner_time, 75);
}

TEST(SimulatorTest, EventsCanScheduleMoreEvents) {
  Simulator sim;
  int fired = 0;
  std::function<void()> chain = [&] {
    ++fired;
    if (fired < 10) {
      sim.ScheduleAfter(1, chain);
    }
  };
  sim.ScheduleAfter(1, chain);
  sim.Run();
  EXPECT_EQ(fired, 10);
  EXPECT_EQ(sim.Now(), 10);
}

TEST(SimulatorTest, CancelPreventsFiring) {
  Simulator sim;
  bool fired = false;
  EventId id = sim.ScheduleAt(10, [&] { fired = true; });
  EXPECT_TRUE(sim.Cancel(id));
  sim.Run();
  EXPECT_FALSE(fired);
  EXPECT_TRUE(sim.Empty());
}

TEST(SimulatorTest, CancelUnknownIdIsNoop) {
  Simulator sim;
  EXPECT_FALSE(sim.Cancel(kInvalidEventId));
  EXPECT_FALSE(sim.Cancel(99999));
}

TEST(SimulatorTest, DoubleCancelReturnsFalse) {
  Simulator sim;
  EventId id = sim.ScheduleAt(10, [] {});
  EXPECT_TRUE(sim.Cancel(id));
  EXPECT_FALSE(sim.Cancel(id));
  sim.Run();
}

TEST(SimulatorTest, RunUntilStopsAtBoundaryAndAdvancesClock) {
  Simulator sim;
  std::vector<TimeNs> fired;
  sim.ScheduleAt(10, [&] { fired.push_back(10); });
  sim.ScheduleAt(20, [&] { fired.push_back(20); });
  sim.ScheduleAt(30, [&] { fired.push_back(30); });
  EXPECT_EQ(sim.RunUntil(20), 2u);
  EXPECT_EQ(sim.Now(), 20);
  EXPECT_EQ(fired, (std::vector<TimeNs>{10, 20}));
  EXPECT_EQ(sim.PendingEvents(), 1u);
  sim.Run();
  EXPECT_EQ(fired.back(), 30);
}

TEST(SimulatorTest, RunUntilAdvancesPastEmptyQueue) {
  Simulator sim;
  sim.RunUntil(1000);
  EXPECT_EQ(sim.Now(), 1000);
}

TEST(SimulatorTest, StepFiresExactlyOne) {
  Simulator sim;
  int fired = 0;
  sim.ScheduleAt(1, [&] { ++fired; });
  sim.ScheduleAt(2, [&] { ++fired; });
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 1);
  EXPECT_TRUE(sim.Step());
  EXPECT_EQ(fired, 2);
  EXPECT_FALSE(sim.Step());
}

TEST(SimulatorTest, StepSkipsCancelled) {
  Simulator sim;
  bool fired = false;
  EventId a = sim.ScheduleAt(1, [&] { fired = true; });
  sim.ScheduleAt(2, [&] { fired = true; });
  sim.Cancel(a);
  EXPECT_TRUE(sim.Step());
  EXPECT_TRUE(fired);
  EXPECT_EQ(sim.Now(), 2);
}

TEST(SimulatorTest, PendingCountTracksCancellations) {
  Simulator sim;
  EventId a = sim.ScheduleAt(5, [] {});
  sim.ScheduleAt(6, [] {});
  EXPECT_EQ(sim.PendingEvents(), 2u);
  sim.Cancel(a);
  EXPECT_EQ(sim.PendingEvents(), 1u);
  EXPECT_FALSE(sim.Empty());
  sim.Run();
  EXPECT_TRUE(sim.Empty());
}

TEST(SimulatorTest, TotalFiredExcludesCancelled) {
  Simulator sim;
  EventId a = sim.ScheduleAt(1, [] {});
  sim.ScheduleAt(2, [] {});
  sim.Cancel(a);
  sim.Run();
  EXPECT_EQ(sim.TotalFired(), 1u);
}

// Property: an arbitrary interleaving of schedules/cancels never fires events
// out of time order.
TEST(SimulatorTest, PropertyMonotonicFiringTimes) {
  Simulator sim;
  std::vector<TimeNs> times;
  uint64_t state = 12345;
  auto next = [&state] {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  };
  std::vector<EventId> ids;
  for (int i = 0; i < 500; ++i) {
    TimeNs t = static_cast<TimeNs>(next() % 10000);
    ids.push_back(sim.ScheduleAt(t, [&times, &sim] { times.push_back(sim.Now()); }));
    if (i % 3 == 0 && !ids.empty()) {
      sim.Cancel(ids[next() % ids.size()]);
    }
  }
  sim.Run();
  for (size_t i = 1; i < times.size(); ++i) {
    EXPECT_LE(times[i - 1], times[i]);
  }
}

}  // namespace
}  // namespace deepserve::sim
