// Fixture-driven self-test for tools/ds_lint. Each fixture under
// tools/ds_lint/testdata marks every line that must produce a finding with a
// marker comment naming the rule(s); the harness runs the linter over the
// fixture set and compares the (file, line, rule) triples exactly in both
// directions, so both false negatives AND false positives fail the test.
// A final test lints the real tree and requires it to be clean.
#include <gtest/gtest.h>

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "lint.h"

namespace ds_lint {
namespace {

namespace fs = std::filesystem;

// The expectation tag. Built from fragments so this file's own text never
// contains the linter's suppression tag and cannot register as a (stale)
// suppression when the real tree is linted below.
const std::string kExpectTag = std::string("ds-lint") + "-expect:";

std::string ReadFile(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot read fixture " << path;
  std::ostringstream buf;
  buf << in.rdbuf();
  return buf.str();
}

bool IsRuleWord(const std::string& w) {
  if (w.empty() || !std::islower(static_cast<unsigned char>(w.front()))) return false;
  return std::all_of(w.begin(), w.end(), [](char c) {
    return std::islower(static_cast<unsigned char>(c)) || c == '-';
  });
}

// Scans `source` for expectation markers and returns "file:line:rule" keys.
std::set<std::string> ParseExpectations(const std::string& file,
                                        const std::string& source) {
  std::set<std::string> expected;
  std::istringstream in(source);
  std::string line;
  int lineno = 0;
  while (std::getline(in, line)) {
    ++lineno;
    size_t tag = line.find(kExpectTag);
    if (tag == std::string::npos) continue;
    std::istringstream words(line.substr(tag + kExpectTag.size()));
    std::string w;
    while (words >> w) {
      while (!w.empty() && w.back() == ',') w.pop_back();
      if (!IsRuleWord(w)) break;
      expected.insert(file + ":" + std::to_string(lineno) + ":" + w);
    }
  }
  return expected;
}

// Lints the named fixtures as one source set (so cross-file indexing works
// exactly as in production) and checks findings against the markers.
void CheckFixtures(const std::vector<std::string>& names) {
  std::vector<std::pair<std::string, std::string>> sources;
  std::set<std::string> expected;
  for (const std::string& name : names) {
    std::string src = ReadFile(fs::path(DS_LINT_TESTDATA) / name);
    ASSERT_FALSE(src.empty()) << name;
    auto marks = ParseExpectations(name, src);
    expected.insert(marks.begin(), marks.end());
    sources.emplace_back(name, std::move(src));
  }

  std::set<std::string> actual;
  std::vector<Finding> findings = LintSources(sources);
  for (const Finding& f : findings) {
    actual.insert(f.file + ":" + std::to_string(f.line) + ":" + f.rule);
  }

  for (const std::string& key : expected) {
    EXPECT_TRUE(actual.count(key) > 0) << "expected finding missing: " << key;
  }
  for (const std::string& key : actual) {
    EXPECT_TRUE(expected.count(key) > 0)
        << "unexpected finding: " << key << "\nfull output:\n"
        << FormatFindings(findings);
  }
}

TEST(DsLintFixtures, GoodDeterminismIsClean) {
  CheckFixtures({"good_determinism.cc"});
}

TEST(DsLintFixtures, BadDeterminismFlagsEveryMarkedLine) {
  CheckFixtures({"bad_determinism.cc"});
}

TEST(DsLintFixtures, GoodStatusIsClean) { CheckFixtures({"good_status.h"}); }

TEST(DsLintFixtures, BadStatusFlagsDeclarationsAndDiscards) {
  CheckFixtures({"bad_status.h", "bad_status.cc"});
}

TEST(DsLintFixtures, GoodObsIsClean) { CheckFixtures({"good_obs.cc"}); }

TEST(DsLintFixtures, BadObsFlagsSpansAndMetricNames) {
  CheckFixtures({"bad_obs.cc"});
}

TEST(DsLintFixtures, GoodHygieneAcceptsBothGuardForms) {
  CheckFixtures({"good_hygiene.h", "good_hygiene2.h"});
}

TEST(DsLintFixtures, BadHygieneFlagsGuardsNamespacesAndRawOwnership) {
  CheckFixtures({"bad_hygiene.h", "bad_guard_mismatch.h", "bad_hygiene.cc"});
}

TEST(DsLintFixtures, GoodCtrlIsClean) { CheckFixtures({"good_ctrl.cc"}); }

TEST(DsLintFixtures, BadCtrlFlagsMutationOutsideApply) {
  CheckFixtures({"bad_ctrl.cc"});
}

TEST(DsLintFixtures, SuppressionInterplay) {
  CheckFixtures({"suppress_interplay.cc"});
}

TEST(DsLintFixtures, GoodDeferredIsClean) {
  CheckFixtures({"good_deferred.cc"});
}

TEST(DsLintFixtures, BadDeferredFlagsEveryEscapingCapture) {
  CheckFixtures({"bad_deferred.cc"});
}

TEST(DsLintFixtures, BadDeferredHeaderThisAndAudits) {
  CheckFixtures({"bad_deferred.h"});
}

TEST(DsLintFixtures, LayeringEdgesAndSeededCycle) {
  // One source set so the include graph sees both halves of the cycle.
  CheckFixtures({"layer/src/sim/good_edge.h", "layer/src/ctrl/bad_edge.h",
                 "layer/src/distflow/uses_rtc.h", "layer/src/rtc/bad_cycle.h"});
}

TEST(DsLintFixtures, GoodTimeUnitsIsClean) {
  CheckFixtures({"good_timeunits.cc"});
}

TEST(DsLintFixtures, BadTimeUnitsFlagsMixesAndRawLiterals) {
  CheckFixtures({"bad_timeunits.cc"});
}

TEST(DsLintOutput, FindingsAreSortedAndFormatted) {
  // Two files given out of order, each with one obvious violation.
  std::vector<std::pair<std::string, std::string>> sources = {
      {"zzz.cc", "void F() { srand(1); }\n"},
      {"aaa.cc", "void G() { srand(2); }\n"},
  };
  std::vector<Finding> findings = LintSources(sources);
  ASSERT_EQ(findings.size(), 2u);
  EXPECT_EQ(findings[0].file, "aaa.cc");
  EXPECT_EQ(findings[1].file, "zzz.cc");
  std::string text = FormatFindings(findings);
  EXPECT_EQ(text.rfind("aaa.cc:1: [banned-call]", 0), 0u) << text;
  EXPECT_NE(text.find("zzz.cc:1: [banned-call]"), std::string::npos) << text;
  // Messages point at the sanctioned replacement.
  EXPECT_NE(findings[0].message.find("Simulator::Now"), std::string::npos);
}

TEST(DsLintOutput, DeterministicAcrossRepeatedRuns) {
  std::vector<std::string> names = {"bad_determinism.cc", "bad_status.h",
                                    "bad_status.cc", "suppress_interplay.cc"};
  std::vector<std::pair<std::string, std::string>> sources;
  for (const std::string& name : names) {
    sources.emplace_back(name, ReadFile(fs::path(DS_LINT_TESTDATA) / name));
  }
  std::string first = FormatFindings(LintSources(sources));
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(FormatFindings(LintSources(sources)), first);
  }
}

TEST(DsLintRules, EveryRuleIdIsKnownAndUnique) {
  std::set<std::string> ids;
  for (const auto& rule : AllRules()) {
    EXPECT_TRUE(IsKnownRule(rule->id()));
    EXPECT_TRUE(ids.insert(std::string(rule->id())).second)
        << "duplicate rule id " << rule->id();
  }
  // One rule file per family; the eight families together.
  EXPECT_GE(ids.size(), 16u);
  EXPECT_FALSE(IsKnownRule("no-such-rule"));
}

TEST(DsLintOutput, ParallelScanMatchesSerialByteForByte) {
  // All bad fixtures at once: a healthy mix of per-file findings plus
  // cross-file index state (smallfn sinks, include graph, ns-typed names).
  std::vector<std::string> names = {
      "bad_determinism.cc",          "bad_status.h",
      "bad_status.cc",               "bad_obs.cc",
      "bad_hygiene.h",               "bad_hygiene.cc",
      "bad_ctrl.cc",                 "bad_deferred.cc",
      "bad_deferred.h",              "bad_timeunits.cc",
      "layer/src/ctrl/bad_edge.h",   "layer/src/distflow/uses_rtc.h",
      "layer/src/rtc/bad_cycle.h",   "suppress_interplay.cc"};
  std::vector<std::pair<std::string, std::string>> sources;
  for (const std::string& name : names) {
    sources.emplace_back(name, ReadFile(fs::path(DS_LINT_TESTDATA) / name));
  }
  std::string serial = FormatFindings(LintSources(sources, 1));
  EXPECT_FALSE(serial.empty());
  for (int threads : {2, 4, 8}) {
    EXPECT_EQ(FormatFindings(LintSources(sources, threads)), serial)
        << "thread count " << threads << " changed the output";
  }
}

TEST(DsLintOutput, JsonIsStableAndEscaped) {
  std::vector<std::pair<std::string, std::string>> sources = {
      {"zzz.cc", "void F() { srand(1); }\n"},
      {"aaa.cc", "void G() { srand(2); }\n"},
  };
  std::vector<Finding> findings = LintSources(sources);
  ASSERT_EQ(findings.size(), 2u);
  std::string json = FormatFindingsJson(findings);
  // Sorted: aaa.cc before zzz.cc, with the stable field order.
  size_t a = json.find("\"file\": \"aaa.cc\"");
  size_t z = json.find("\"file\": \"zzz.cc\"");
  ASSERT_NE(a, std::string::npos) << json;
  ASSERT_NE(z, std::string::npos) << json;
  EXPECT_LT(a, z);
  EXPECT_EQ(json.rfind("[\n", 0), 0u) << json;
  EXPECT_NE(json.find("\"rule\": \"banned-call\""), std::string::npos) << json;
  // Escaping: quotes and backslashes in messages cannot corrupt the array.
  Finding hostile{"a\"b.cc", 3, "banned-call", "say \"hi\"\\\n"};
  std::string escaped = FormatFindingsJson({hostile});
  EXPECT_NE(escaped.find("a\\\"b.cc"), std::string::npos) << escaped;
  EXPECT_NE(escaped.find("say \\\"hi\\\"\\\\\\n"), std::string::npos) << escaped;
  EXPECT_EQ(FormatFindingsJson({}), "[]\n");
}

// Mirrors the production walker in tools/ds_lint/main.cc: same roots, same
// extensions, same skip list. The real tree must lint clean — zero findings
// and zero stale suppressions — which is exactly what ci.sh enforces.
TEST(DsLintTree, RealTreeIsClean) {
  const fs::path root = DS_SOURCE_ROOT;
  std::vector<std::string> paths;
  for (const char* top : {"src", "bench", "examples", "tests"}) {
    fs::path dir = root / top;
    ASSERT_TRUE(fs::exists(dir)) << dir;
    for (auto it = fs::recursive_directory_iterator(dir);
         it != fs::recursive_directory_iterator(); ++it) {
      const fs::path& p = it->path();
      if (it->is_directory()) {
        std::string name = p.filename().string();
        if (name == "testdata" || name == ".git" || name.rfind("build", 0) == 0) {
          it.disable_recursion_pending();
        }
        continue;
      }
      std::string ext = p.extension().string();
      if (ext == ".h" || ext == ".cc" || ext == ".cpp") {
        paths.push_back(p.string());
      }
    }
  }
  std::sort(paths.begin(), paths.end());
  ASSERT_GT(paths.size(), 100u) << "walker found suspiciously few files";
  std::vector<Finding> findings = LintPaths(paths, root.string());
  EXPECT_TRUE(findings.empty()) << "tree is not lint-clean:\n"
                                << FormatFindings(findings);
}

}  // namespace
}  // namespace ds_lint
