// Autoscaler tests: the pluggable ScalePolicy layer (unit-driven with
// synthetic ScaleSignals), the 3-seed reactive golden parity pin (the
// refactored autoscaler must reproduce the pre-refactor ClusterManager tick
// bit-for-bit under legacy_floor_average + graceful_drain=false), and the
// graceful-drain mechanism properties: drains lose nothing, crashes racing a
// drain abort it cleanly, and drain timeouts force-kill into the re-dispatch
// path.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "common/time_units.h"
#include "distflow/distflow.h"
#include "hw/cluster.h"
#include "model/model_spec.h"
#include "serving/autoscaler.h"
#include "serving/cluster_manager.h"
#include "serving/job_executor.h"
#include "serving/predictor.h"
#include "serving/task_executor.h"
#include "sim/simulator.h"
#include "workload/tracegen.h"

namespace deepserve {
namespace {

// ---------------- ScalePolicy units ----------------

serving::ScaleSignals Sig(int live, int64_t queue, int pending = 0) {
  serving::ScaleSignals s;
  s.tick_interval = MsToNs(500);
  s.live_tes = live;
  s.total_queue_depth = queue;
  s.pending_scale_ups = pending;
  return s;
}

TEST(ScalePolicyFactoryTest, RejectsUnknownPolicy) {
  serving::AutoscalerConfig config;
  config.policy = "psychic";
  auto policy = serving::MakeScalePolicy(config);
  ASSERT_FALSE(policy.ok());
  EXPECT_EQ(policy.status().code(), StatusCode::kInvalidArgument);
}

TEST(ScalePolicyFactoryTest, MakesAllThree) {
  for (const char* name : {"reactive", "predictive", "slo"}) {
    serving::AutoscalerConfig config;
    config.policy = name;
    auto policy = serving::MakeScalePolicy(config);
    ASSERT_TRUE(policy.ok()) << name;
    EXPECT_EQ(policy.value()->name(), name);
  }
}

// The historical bug the refactor fixes: floor(total/live) under-reports the
// average queue depth. On the down side the floor makes `avg <= D` true for
// any total < (D+1)*live, so the legacy tick sheds capacity while the exact
// comparison (total <= D*live) correctly holds it.
TEST(ReactivePolicyTest, LegacyFloorShedsWhereExactAverageHolds) {
  serving::AutoscalerConfig config;
  config.policy = "reactive";
  config.scale_up_queue_depth = 4;
  config.scale_down_queue_depth = 1;
  config.min_tes = 1;
  config.max_tes = 8;

  config.legacy_floor_average = true;
  auto legacy = serving::MakeScalePolicy(config).value();
  config.legacy_floor_average = false;
  auto exact = serving::MakeScalePolicy(config).value();

  // live=4, total=7: true average 1.75 > 1, but floor(7/4) = 1 <= 1.
  serving::ScaleDecision from_legacy = legacy->Tick(Sig(4, 7));
  serving::ScaleDecision from_exact = exact->Tick(Sig(4, 7));
  EXPECT_EQ(from_legacy.scale_down, 1);
  EXPECT_EQ(from_exact.scale_down, 0);

  // Up-side the two are equivalent: floor(total/live) >= U iff total >= U*live.
  EXPECT_EQ(legacy->Tick(Sig(4, 16)).scale_up, 1);
  EXPECT_EQ(exact->Tick(Sig(4, 16)).scale_up, 1);
  EXPECT_EQ(legacy->Tick(Sig(4, 15)).scale_up, 0);
  EXPECT_EQ(exact->Tick(Sig(4, 15)).scale_up, 0);
}

TEST(ReactivePolicyTest, SingleScaleUpInFlightCap) {
  serving::AutoscalerConfig config;
  config.policy = "reactive";
  config.scale_up_queue_depth = 4;
  config.max_tes = 8;
  auto policy = serving::MakeScalePolicy(config).value();
  EXPECT_EQ(policy->Tick(Sig(2, 100)).scale_up, 1);
  EXPECT_EQ(policy->Tick(Sig(2, 100, /*pending=*/1)).scale_up, 0);
}

TEST(ReactivePolicyTest, RespectsMinAndMax) {
  serving::AutoscalerConfig config;
  config.policy = "reactive";
  config.scale_up_queue_depth = 4;
  config.scale_down_queue_depth = 1;
  config.min_tes = 2;
  config.max_tes = 3;
  auto policy = serving::MakeScalePolicy(config).value();
  EXPECT_EQ(policy->Tick(Sig(3, 100)).scale_up, 0) << "at max_tes";
  EXPECT_EQ(policy->Tick(Sig(2, 0)).scale_down, 0) << "at min_tes";
}

// Drives the predictive policy through a linear arrival-rate ramp with EMPTY
// queues: capacity must be requested from the forecast alone, before any
// backpressure a reactive policy could see.
TEST(PredictivePolicyTest, ScalesAheadOfRampWithEmptyQueues) {
  serving::AutoscalerConfig config;
  config.policy = "predictive";
  config.te_capacity_rps = 1.0;
  config.min_tes = 1;
  config.max_tes = 8;
  auto predictive = serving::MakeScalePolicy(config).value();
  config.policy = "reactive";
  auto reactive = serving::MakeScalePolicy(config).value();

  const DurationNs tick = MsToNs(500);
  const double dt = NsToS(tick);
  int64_t predictive_ups = 0;
  int64_t reactive_ups = 0;
  double admitted = 0.0;
  int live = 1;
  for (int k = 0; k < 40; ++k) {
    double rate = 0.4 * static_cast<double>(k);  // 0 -> 8 rps over 20 s
    admitted += rate * dt;
    serving::ScaleSignals s = Sig(live, /*queue=*/0);
    s.now = tick * (k + 1);
    s.admitted_requests = static_cast<int64_t>(admitted);
    s.scale_up_lead = SToNs(3.0);
    serving::ScaleDecision d = predictive->Tick(s);
    predictive_ups += d.scale_up;
    live += d.scale_up;  // pretend scale-ups land instantly
    reactive_ups += reactive->Tick(s).scale_up;
  }
  EXPECT_GT(predictive_ups, 0) << "forecast never requested capacity";
  EXPECT_EQ(reactive_ups, 0) << "queues were empty; reactive had no trigger";
  EXPECT_GT(live, 2);
}

TEST(PredictivePolicyTest, ForecastsAreScoredOnceTargetTimeArrives) {
  serving::AutoscalerConfig config;
  config.policy = "predictive";
  auto policy = serving::MakeScalePolicy(config).value();
  const DurationNs tick = MsToNs(500);
  bool scored = false;
  for (int k = 0; k < 20; ++k) {
    serving::ScaleSignals s = Sig(1, 0);
    s.now = tick * (k + 1);
    s.admitted_requests = k;  // steady 2 rps
    s.scale_up_lead = SToNs(2.0);
    serving::ScaleDecision d = policy->Tick(s);
    if (d.forecast_abs_err >= 0.0) {
      scored = true;
      EXPECT_LT(d.forecast_abs_err, 4.0) << "steady rate, forecast way off";
    }
  }
  EXPECT_TRUE(scored) << "no forecast was ever scored against reality";
}

// After the load vanishes, the down-streak arms once and stays armed: one TE
// retired per tick while the surplus persists (not one per streak window).
TEST(PredictivePolicyTest, ArmedDownStreakRetiresOneTePerTick) {
  serving::AutoscalerConfig config;
  config.policy = "predictive";
  config.te_capacity_rps = 1.0;
  config.down_stable_ticks = 3;
  config.min_tes = 1;
  config.max_tes = 8;
  auto policy = serving::MakeScalePolicy(config).value();
  const DurationNs tick = MsToNs(500);
  int live = 4;
  int tick_index = 0;
  auto advance = [&](double rate_rps, int64_t queue) {
    static double admitted = 0.0;
    admitted += rate_rps * NsToS(tick);
    serving::ScaleSignals s = Sig(live, queue);
    s.now = tick * (++tick_index);
    s.admitted_requests = static_cast<int64_t>(admitted);
    s.scale_up_lead = SToNs(1.0);
    return policy->Tick(s);
  };
  // Warm up the EWMA at saturation so live=4 is justified, then go quiet.
  for (int k = 0; k < 10; ++k) {
    advance(4.0, /*queue=*/8);
  }
  std::vector<int> downs;
  for (int k = 0; k < 8; ++k) {
    serving::ScaleDecision d = advance(0.0, /*queue=*/0);
    downs.push_back(d.scale_down);
    live -= d.scale_down;
  }
  // First down_stable_ticks-1 ticks build the streak, then one TE per tick
  // until min_tes.
  int total_downs = 0;
  for (int d : downs) {
    total_downs += d;
  }
  EXPECT_EQ(total_downs, 3) << "expected 4 -> 1 retirement";
  EXPECT_EQ(live, 1);
  // The retirements are consecutive once armed.
  EXPECT_EQ(downs.back(), 0) << "kept shedding below min_tes";
}

TEST(SloPolicyTest, ScalesOnViolationRateNotQueueDepth) {
  serving::AutoscalerConfig config;
  config.policy = "slo";
  config.slo_scale_up_violation_rate = 0.05;
  config.slo_scale_down_violation_rate = 0.005;
  config.down_stable_ticks = 2;
  config.scale_down_queue_depth = 4;
  config.min_tes = 1;
  config.max_tes = 8;
  auto policy = serving::MakeScalePolicy(config).value();
  const DurationNs tick = MsToNs(500);

  // Baseline tick.
  serving::ScaleSignals s = Sig(2, 0);
  s.now = tick;
  policy->Tick(s);

  // 5 violations against 5 completions: 50% violation rate -> scale up.
  s = Sig(2, 0);
  s.now = tick * 2;
  s.completed_requests = 5;
  s.ttft_violations = 3;
  s.tbt_violations = 1;
  s.deadline_misses = 1;
  EXPECT_EQ(policy->Tick(s).scale_up, 1);

  // Quiet ticks: no new violations -> scale down after down_stable_ticks.
  int downs = 0;
  for (int k = 3; k < 6; ++k) {
    s = Sig(2, 0);
    s.now = tick * k;
    s.completed_requests = 5 + k;
    s.ttft_violations = 3;
    s.tbt_violations = 1;
    s.deadline_misses = 1;
    downs += policy->Tick(s).scale_down;
  }
  EXPECT_GE(downs, 1);
}

// ---------------- Reactive golden parity ----------------
//
// Replays the exact pre-refactor harness: the numbers below were captured
// from the seed commit's hand-rolled ClusterManager::AutoscalerTick loop.
// The extracted ReactivePolicy under legacy_floor_average=true and
// graceful_drain=false must reproduce every field, including the FNV-1a hash
// over (id, first_token_time, finish_time) of each completion.

struct GoldenRun {
  int64_t scale_ups = 0;
  int64_t scale_downs = 0;
  int64_t completed = 0;
  int64_t errored = 0;
  int final_ready = 0;
  TimeNs end_time = 0;
  uint64_t timeline_hash = 0;
};

GoldenRun RunReactiveGolden(uint64_t seed) {
  sim::Simulator sim;
  hw::ClusterConfig cluster_config;
  cluster_config.num_machines = 2;
  hw::Cluster cluster(&sim, cluster_config);
  distflow::TransferEngine transfer(&sim, &cluster, {});
  serving::ClusterManager manager(&sim, &cluster, &transfer);
  manager.ReservePrewarmedPods(8);
  manager.ReservePrewarmedTes(8);
  for (int m = 0; m < cluster.num_machines(); ++m) {
    manager.PreloadModelToDram(m, model::ModelSpec::Tiny1B());
  }
  sim.Run();

  serving::JeConfig je_config;
  je_config.policy = serving::SchedulingPolicy::kLoadOnly;
  serving::JobExecutor je(&sim, je_config, serving::PdHeatmap::Default(),
                          serving::MakeOraclePredictor());
  flowserve::EngineConfig engine;
  engine.model = model::ModelSpec::Tiny1B();
  engine.npu_spec = cluster_config.npu_spec;
  engine.parallelism = {1, 1, 1};
  engine.role = flowserve::EngineRole::kColocated;
  auto first = manager.CreateReadyTe(engine);
  je.AddColocatedTe(first.value());

  serving::AutoscalerConfig as;
  as.check_interval = MsToNs(500);
  as.scale_up_queue_depth = 4;
  as.scale_down_queue_depth = 0;
  as.min_tes = 1;
  as.max_tes = 4;
  as.policy = "reactive";
  as.legacy_floor_average = true;
  as.graceful_drain = false;
  serving::ScaleRequest request;
  request.engine = engine;
  manager.StartAutoscaler(&je, as, request);

  auto trace_config = workload::TraceGenerator::InternalTrace(12.0, 30.0, seed);
  trace_config.prefill = workload::LengthDistribution{512, 0.3, 64, 2048};
  trace_config.decode = workload::LengthDistribution{64, 0.4, 8, 256};
  auto trace = workload::TraceGenerator(trace_config).Generate();
  const TimeNs t0 = sim.Now();
  for (auto& spec : trace) {
    spec.arrival += t0;
  }

  GoldenRun out;
  uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](uint64_t v) {
    hash ^= v;
    hash *= 1099511628211ull;
  };
  for (const auto& spec : trace) {
    sim.ScheduleAt(spec.arrival, [&, spec] {
      je.HandleRequest(spec, {nullptr,
                              [&, id = spec.id](const flowserve::Sequence& seq) {
                                ++out.completed;
                                mix(id);
                                mix(static_cast<uint64_t>(seq.first_token_time));
                                mix(static_cast<uint64_t>(seq.finish_time));
                              },
                              [&](const Status&) { ++out.errored; }});
    });
  }
  sim.RunUntil(t0 + SToNs(180));
  manager.StopAutoscaler();
  sim.Run();

  for (const auto& te : manager.tes()) {
    if (te->ready()) {
      ++out.final_ready;
    }
  }
  out.scale_ups = manager.stats().scale_ups;
  out.scale_downs = manager.stats().scale_downs;
  out.end_time = sim.Now();
  out.timeline_hash = hash;
  return out;
}

TEST(ReactiveGoldenParityTest, BitIdenticalToPreRefactorAutoscaler) {
  struct GoldenRow {
    uint64_t seed;
    int64_t scale_ups;
    int64_t scale_downs;
    int64_t completed;
    int64_t errored;
    int final_ready;
    TimeNs end_time;
    uint64_t timeline_hash;
  };
  // Captured from the pre-ScalePolicy ClusterManager autoscaler loop.
  const GoldenRow kGolden[] = {
      {11ull, 6, 6, 373, 0, 1, 180560063275, 0x4d1b75db833b121dull},
      {23ull, 5, 5, 396, 0, 1, 180560063275, 0xeb878e9f32f7f2edull},
      {47ull, 5, 5, 347, 0, 1, 180560063275, 0x734b3141df4b37cull},
  };
  for (const GoldenRow& row : kGolden) {
    GoldenRun run = RunReactiveGolden(row.seed);
    EXPECT_EQ(run.scale_ups, row.scale_ups) << "seed " << row.seed;
    EXPECT_EQ(run.scale_downs, row.scale_downs) << "seed " << row.seed;
    EXPECT_EQ(run.completed, row.completed) << "seed " << row.seed;
    EXPECT_EQ(run.errored, row.errored) << "seed " << row.seed;
    EXPECT_EQ(run.final_ready, row.final_ready) << "seed " << row.seed;
    EXPECT_EQ(run.end_time, row.end_time) << "seed " << row.seed;
    EXPECT_EQ(run.timeline_hash, row.timeline_hash) << "seed " << row.seed;
  }
}

// ---------------- Graceful-drain mechanism ----------------

workload::RequestSpec MakeRequest(workload::RequestId id, int64_t prefill, int64_t decode) {
  workload::RequestSpec spec;
  spec.id = id;
  spec.decode_len = decode;
  for (int64_t i = 0; i < prefill; ++i) {
    spec.prompt.push_back(600 + static_cast<TokenId>((id * 131 + i) % 8000));
  }
  return spec;
}

class DrainTest : public ::testing::Test {
 protected:
  DrainTest()
      : cluster_(&sim_, MakeClusterConfig()),
        transfer_(&sim_, &cluster_, {}),
        manager_(&sim_, &cluster_, &transfer_),
        je_(&sim_, MakeJeConfig(), serving::PdHeatmap::Default(),
            serving::MakeOraclePredictor()) {
    engine_.model = model::ModelSpec::Tiny1B();
    engine_.parallelism = {1, 1, 1};
    engine_.role = flowserve::EngineRole::kColocated;
    for (int i = 0; i < 2; ++i) {
      tes_.push_back(manager_.CreateReadyTe(engine_).value());
      je_.AddColocatedTe(tes_.back());
    }
    manager_.AddFailureHandler([this](serving::TeId id) { je_.OnTeFailure(id); });
  }

  static hw::ClusterConfig MakeClusterConfig() {
    hw::ClusterConfig config;
    config.num_machines = 1;
    return config;
  }

  static serving::JeConfig MakeJeConfig() {
    serving::JeConfig config;
    config.policy = serving::SchedulingPolicy::kLoadOnly;
    return config;
  }

  // An autoscaler whose reactive down-trigger always holds: it sheds one TE
  // per tick toward min_tes as soon as it starts ticking.
  serving::AutoscalerConfig ShedConfig() {
    serving::AutoscalerConfig config;
    config.policy = "reactive";
    config.check_interval = MsToNs(50);
    config.scale_up_queue_depth = 1 << 20;
    config.scale_down_queue_depth = 1 << 20;
    config.min_tes = 1;
    config.max_tes = 2;
    config.graceful_drain = true;
    return config;
  }

  void SubmitAll(int count) {
    for (int i = 0; i < count; ++i) {
      je_.HandleRequest(MakeRequest(i + 1, 512, 128),
                        {nullptr,
                         [this](const flowserve::Sequence&) { ++completed_; },
                         [this](const Status&) { ++errored_; }});
    }
  }

  sim::Simulator sim_;
  hw::Cluster cluster_;
  distflow::TransferEngine transfer_;
  serving::ClusterManager manager_;
  serving::JobExecutor je_;
  flowserve::EngineConfig engine_;
  std::vector<serving::TaskExecutor*> tes_;
  int64_t completed_ = 0;
  int64_t errored_ = 0;
};

TEST_F(DrainTest, GracefulDrainLosesNoInflightWork) {
  constexpr int kRequests = 8;
  SubmitAll(kRequests);
  serving::ScaleRequest request;
  request.engine = engine_;
  manager_.StartAutoscaler(&je_, ShedConfig(), request);
  // Let the work land and the first tick pick a (busy) victim, then run out.
  sim_.RunUntil(SToNs(60));
  manager_.StopAutoscaler();
  sim_.Run();

  EXPECT_EQ(completed_, kRequests) << "drain dropped in-flight work";
  EXPECT_EQ(errored_, 0);
  const serving::AutoscalerStats& stats = manager_.autoscaler()->stats();
  EXPECT_EQ(stats.drains_started, 1);
  EXPECT_EQ(stats.drains_completed, 1);
  EXPECT_EQ(stats.drain_timeouts, 0);
  EXPECT_GT(stats.drained_seqs, 0) << "victim was idle; drain proved nothing";
  EXPECT_GT(stats.drain_ns_total, 0);
  // Exactly one TE retired, one survivor.
  int ready = 0;
  int stopped = 0;
  for (const auto& te : manager_.tes()) {
    ready += te->ready() ? 1 : 0;
    stopped += te->state() == serving::TeState::kStopped ? 1 : 0;
  }
  EXPECT_EQ(ready, 1);
  EXPECT_EQ(stopped, 1);
}

TEST_F(DrainTest, LegacyInstantStopSkipsBusyTes) {
  constexpr int kRequests = 8;
  SubmitAll(kRequests);
  serving::AutoscalerConfig config = ShedConfig();
  config.graceful_drain = false;
  serving::ScaleRequest request;
  request.engine = engine_;
  manager_.StartAutoscaler(&je_, config, request);
  sim_.RunUntil(SToNs(60));
  manager_.StopAutoscaler();
  sim_.Run();

  EXPECT_EQ(completed_, kRequests);
  EXPECT_EQ(errored_, 0);
  const serving::AutoscalerStats& stats = manager_.autoscaler()->stats();
  EXPECT_EQ(stats.drains_started, 0);
  EXPECT_GE(stats.legacy_stops, 1) << "idle TE was never instantly stopped";
}

TEST_F(DrainTest, CrashRacingDrainAbortsItAndConservesRequests) {
  constexpr int kRequests = 8;
  SubmitAll(kRequests);
  serving::AutoscalerConfig config = ShedConfig();
  config.drain_timeout = SToNs(5);  // bound how long the abort takes to surface
  serving::ScaleRequest request;
  request.engine = engine_;
  manager_.StartAutoscaler(&je_, config, request);
  // First tick at 50 ms starts the drain; crash the draining TE mid-drain.
  sim_.ScheduleAt(MsToNs(80), [this] {
    for (const auto& te : manager_.tes()) {
      if (te->draining()) {
        ASSERT_TRUE(manager_.KillTe(te->id()).ok());
        return;
      }
    }
    FAIL() << "no TE was draining at crash time";
  });
  sim_.RunUntil(SToNs(60));
  manager_.StopAutoscaler();
  sim_.Run();

  EXPECT_EQ(completed_, kRequests) << "crash-racing-drain lost requests";
  EXPECT_EQ(errored_, 0);
  const serving::AutoscalerStats& stats = manager_.autoscaler()->stats();
  EXPECT_GE(stats.drains_started, 1);
  EXPECT_GE(stats.drains_aborted, 1) << "abort was never detected";
  EXPECT_EQ(stats.drained_seqs, 0);
}

TEST_F(DrainTest, DrainTimeoutForceKillsIntoRedispatch) {
  constexpr int kRequests = 8;
  SubmitAll(kRequests);
  serving::AutoscalerConfig config = ShedConfig();
  // Far too short for 512/128-token jobs: the drain must time out.
  config.drain_timeout = MsToNs(1);
  serving::ScaleRequest request;
  request.engine = engine_;
  manager_.StartAutoscaler(&je_, config, request);
  sim_.RunUntil(SToNs(60));
  manager_.StopAutoscaler();
  sim_.Run();

  EXPECT_EQ(completed_, kRequests) << "force-killed stragglers were not re-dispatched";
  EXPECT_EQ(errored_, 0);
  const serving::AutoscalerStats& stats = manager_.autoscaler()->stats();
  EXPECT_GE(stats.drain_timeouts, 1);
  EXPECT_EQ(stats.drains_completed, 0);
}

}  // namespace
}  // namespace deepserve
