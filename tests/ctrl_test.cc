// Replicated control-plane tests: the sequenced shared log, deterministic
// state-machine replay, CM/JE leader failover, the pipeline-abort crash path,
// and the 3-seed golden parity pin proving the degenerate log config is
// bit-identical to the pre-log tree.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <memory>
#include <vector>

#include "common/time_units.h"
#include "ctrl/control_log.h"
#include "ctrl/job_table.h"
#include "ctrl/te_directory.h"
#include "distflow/distflow.h"
#include "faults/fault_injector.h"
#include "hw/cluster.h"
#include "obs/metrics.h"
#include "serving/cluster_manager.h"
#include "serving/job_executor.h"
#include "serving/predictor.h"
#include "sim/simulator.h"
#include "workload/tracegen.h"

namespace deepserve {
namespace {

flowserve::EngineConfig SmallEngine(flowserve::EngineRole role) {
  flowserve::EngineConfig config;
  config.model = model::ModelSpec::Tiny1B();
  config.parallelism = {1, 1, 1};
  config.role = role;
  config.kv_block_capacity_override = 4096;
  return config;
}

workload::RequestSpec MakeRequest(workload::RequestId id, int64_t prefill, int64_t decode,
                                  TokenId base = 700) {
  workload::RequestSpec spec;
  spec.id = id;
  spec.decode_len = decode;
  for (int64_t i = 0; i < prefill; ++i) {
    spec.prompt.push_back(base + static_cast<TokenId>(i % 8000));
  }
  return spec;
}

// ---------------- ControlLog: sequencing, apply, replay ----------------

TEST(ControlLogTest, SequencesAcrossDomainsInAppendOrder) {
  sim::Simulator sim;
  ctrl::ControlLog log(&sim);
  const int32_t alpha = log.RegisterDomain("alpha");
  const int32_t beta = log.RegisterDomain("beta");
  EXPECT_NE(alpha, beta);

  EXPECT_EQ(log.Append({0, 0, alpha, 1, {}, {}}).seq, 0u);
  EXPECT_EQ(log.Append({0, 0, beta, 1, {}, {}}).seq, 1u);
  EXPECT_EQ(log.Append({0, 0, alpha, 2, {}, {}}).seq, 2u);
  EXPECT_EQ(log.next_seq(), 3u);
  EXPECT_EQ(log.CountDomain(alpha), 2);
  EXPECT_EQ(log.CountDomain(beta), 1);
  EXPECT_EQ(log.records().size(), 3u);
}

TEST(ControlLogTest, AppendAppliesInlineToAttachedMachine) {
  sim::Simulator sim;
  ctrl::ControlLog log(&sim);
  ctrl::JobTable table(log.RegisterDomain("job-table"));
  log.Attach(&table);

  log.Append({0, 0, table.domain(), ctrl::JobTable::kRrAdvanced, {}, {}});
  log.Append({0, 0, table.domain(), ctrl::JobTable::kTeAdded,
              {ctrl::JobTable::kColocated, 7}, {}});
  EXPECT_EQ(table.rr_cursor(), 1u);
  ASSERT_EQ(table.group(ctrl::JobTable::kColocated).size(), 1u);
  EXPECT_EQ(table.group(ctrl::JobTable::kColocated)[0], 7);
  EXPECT_EQ(table.applied(), 2u);

  // Detached machines stop observing appends.
  log.Detach(table.domain());
  log.Append({0, 0, table.domain(), ctrl::JobTable::kRrAdvanced, {}, {}});
  EXPECT_EQ(table.rr_cursor(), 1u);
}

TEST(ControlLogTest, ReplayFromNothingMatchesLiveFingerprint) {
  sim::Simulator sim;
  ctrl::ControlLog log(&sim);
  ctrl::JobTable live(log.RegisterDomain("job-table"));
  log.Attach(&live);
  const int32_t other = log.RegisterDomain("other");

  log.Append({0, 0, live.domain(), ctrl::JobTable::kTeAdded, {ctrl::JobTable::kColocated, 3}, {}});
  log.Append({0, 0, other, 99, {1, 2, 3}, "noise"});  // foreign domain: must be filtered
  log.Append({0, 0, live.domain(), ctrl::JobTable::kTeAdded, {ctrl::JobTable::kPrefill, 4}, {}});
  log.Append({0, 0, live.domain(), ctrl::JobTable::kRrAdvanced, {}, {}});
  log.Append({0, 0, live.domain(), ctrl::JobTable::kTeRemoved, {3}, {}});

  ctrl::JobTable standby(live.domain());
  log.ReplayInto(&standby);
  EXPECT_EQ(standby.Fingerprint(), live.Fingerprint());
  EXPECT_EQ(standby.applied(), live.applied());
}

TEST(ControlLogTest, SnapshotPlusRangeReplayMatchesLive) {
  sim::Simulator sim;
  ctrl::ControlLog log(&sim);
  ctrl::JobTable live(log.RegisterDomain("job-table"));
  log.Attach(&live);

  log.Append({0, 0, live.domain(), ctrl::JobTable::kTeAdded, {ctrl::JobTable::kColocated, 1}, {}});
  log.Append({0, 0, live.domain(), ctrl::JobTable::kTeAdded, {ctrl::JobTable::kDecode, 2}, {}});

  // The "snapshot" is a plain value copy taken at a known sequence point.
  ctrl::JobTable snapshot = live;
  const uint64_t snapshot_seq = log.next_seq() - 1;

  log.Append({0, 0, live.domain(), ctrl::JobTable::kRrAdvanced, {}, {}});
  log.Append({0, 0, live.domain(), ctrl::JobTable::kTeRemoved, {2}, {}});

  EXPECT_NE(snapshot.Fingerprint(), live.Fingerprint());
  log.ReplayRange(&snapshot, snapshot_seq);
  EXPECT_EQ(snapshot.Fingerprint(), live.Fingerprint());
  EXPECT_EQ(snapshot.applied(), live.applied());
}

TEST(ControlLogTest, FailoverDelayChargesLeaseGapAndTailReplay) {
  sim::Simulator sim;
  ctrl::CtrlConfig config;
  config.replicas = 3;
  config.quorum = 2;
  config.replication_latency = MsToNs(2);
  config.lease_duration = MsToNs(100);
  config.replay_cost_per_record = UsToNs(2);
  ctrl::ControlLog log(&sim, config);
  EXPECT_TRUE(log.replicated());
  const int32_t domain = log.RegisterDomain("dir");

  // Three records at t=0, two more at t=10ms.
  for (int i = 0; i < 3; ++i) log.Append({0, 0, domain, 1, {}, {}});
  sim.ScheduleAt(MsToNs(10), [&] {
    log.Append({0, 0, domain, 1, {}, {}});
    log.Append({0, 0, domain, 1, {}, {}});
  });
  sim.Run();

  // Crash at t=11ms: the replication horizon is 9ms, so only the two records
  // stamped at 10ms are still unreplicated.
  const TimeNs crash = MsToNs(11);
  EXPECT_EQ(log.UnreplicatedAt(crash), 2);
  EXPECT_EQ(log.FailoverDelay(crash),
            MsToNs(100) + MsToNs(2) + 2 * UsToNs(2));

  // Long after the appends everything has replicated; only lease + fetch remain.
  EXPECT_EQ(log.UnreplicatedAt(SToNs(5)), 0);
  EXPECT_EQ(log.FailoverDelay(SToNs(5)), MsToNs(100) + MsToNs(2));
}

TEST(ControlLogTest, DegenerateConfigIsNotReplicated) {
  sim::Simulator sim;
  ctrl::ControlLog degenerate(&sim);
  EXPECT_FALSE(degenerate.replicated());
  EXPECT_EQ(degenerate.UnreplicatedAt(SToNs(1)), 0);
}

// ---------------- State-machine replay through the real stack ----------------

class CtrlStackTest : public ::testing::Test {
 protected:
  CtrlStackTest()
      : cluster_(&sim_, MakeClusterConfig()),
        transfer_(&sim_, &cluster_, distflow::DistFlowConfig{}) {}

  static hw::ClusterConfig MakeClusterConfig() {
    hw::ClusterConfig config;
    config.num_machines = 3;
    return config;
  }

  sim::Simulator sim_;
  hw::Cluster cluster_;
  distflow::TransferEngine transfer_;
};

TEST_F(CtrlStackTest, TeDirectoryReplayMatchesLiveAfterScaleStopCrash) {
  serving::ClusterManager manager(&sim_, &cluster_, &transfer_);
  manager.ReservePrewarmedPods(2);
  manager.ReservePrewarmedTes(2);
  manager.PreloadModelToDram(0, model::ModelSpec::Tiny1B());
  sim_.Run();

  auto* te_a = manager.CreateReadyTe(SmallEngine(flowserve::EngineRole::kColocated)).value();
  auto* te_b = manager.CreateReadyTe(SmallEngine(flowserve::EngineRole::kColocated)).value();
  serving::ScaleRequest request;
  request.engine = SmallEngine(flowserve::EngineRole::kColocated);
  int ready = 0;
  ASSERT_TRUE(manager.ScaleUp(request, [&](serving::TaskExecutor* te,
                                           const serving::ScalingBreakdown&) {
                       if (te != nullptr) ++ready;
                     })
                  .ok());
  sim_.Run();
  EXPECT_EQ(ready, 1);
  ASSERT_TRUE(manager.StopTe(te_a->id()).ok());
  ASSERT_TRUE(manager.CrashTe(te_b->id(), serving::CrashKind::kNpu).ok());
  sim_.Run();  // heartbeat detection lands

  ctrl::TeDirectory standby(manager.directory().domain());
  manager.ctrl_log()->ReplayInto(&standby);
  EXPECT_EQ(standby.Fingerprint(), manager.directory().Fingerprint());
  EXPECT_EQ(standby.applied(), manager.directory().applied());
  EXPECT_EQ(standby.npus_in_use(), manager.directory().npus_in_use());
}

TEST_F(CtrlStackTest, JobTableReplayMatchesLiveAfterTraffic) {
  ctrl::ControlLog log(&sim_);
  serving::ClusterManager manager(&sim_, &cluster_, &transfer_, {}, {}, &log);
  serving::JeConfig je_config;
  je_config.policy = serving::SchedulingPolicy::kLoadOnly;
  serving::JobExecutor je(&sim_, je_config, serving::PdHeatmap::Default(),
                          serving::MakeOraclePredictor());
  je.AttachControl(&log, &manager);
  je.AddColocatedTe(manager.CreateReadyTe(SmallEngine(flowserve::EngineRole::kColocated)).value());
  je.AddColocatedTe(manager.CreateReadyTe(SmallEngine(flowserve::EngineRole::kColocated)).value());

  int completed = 0;
  for (int i = 1; i <= 6; ++i) {
    sim_.ScheduleAt(MsToNs(50 * i), [&, i] {
      je.HandleRequest(MakeRequest(i, 128, 16),
                       {nullptr, [&](const flowserve::Sequence&) { ++completed; }, nullptr});
    });
  }
  sim_.Run();
  EXPECT_EQ(completed, 6);

  ctrl::JobTable standby(je.table().domain());
  log.ReplayInto(&standby);
  EXPECT_EQ(standby.Fingerprint(), je.table().Fingerprint());
  EXPECT_EQ(standby.applied(), je.table().applied());
  EXPECT_EQ(standby.jobs().size(), je.table().jobs().size());
  EXPECT_TRUE(standby.outstanding().empty());
}

// ---------------- Pipeline abort: crash during provisioning ----------------

TEST_F(CtrlStackTest, KillTeMidPipelineAbortsWithoutReadyCallback) {
  serving::ClusterManager manager(&sim_, &cluster_, &transfer_);  // cold: no pools
  const int64_t npus_before = manager.directory().npus_in_use();

  serving::ScaleRequest request;
  request.engine = SmallEngine(flowserve::EngineRole::kColocated);
  int callbacks = 0;
  serving::TaskExecutor* delivered = reinterpret_cast<serving::TaskExecutor*>(0x1);
  auto id = manager.ScaleUp(request, [&](serving::TaskExecutor* te,
                                         const serving::ScalingBreakdown&) {
    ++callbacks;
    delivered = te;
  });
  ASSERT_TRUE(id.ok());
  EXPECT_GT(manager.directory().npus_in_use(), npus_before);
  EXPECT_EQ(manager.directory().open_pipelines().size(), 1u);

  sim_.RunUntil(SToNs(5));  // mid Scaler-Pre (cold pod creation is 12s)
  auto dropped = manager.KillTe(id.value());
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped.value(), 0u);  // a provisioning TE holds no requests
  sim_.Run();

  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(delivered, nullptr);
  EXPECT_EQ(manager.stats().scale_aborts, 1);
  EXPECT_EQ(manager.stats().crashes, 1);
  EXPECT_EQ(manager.stats().te_failures, 0);  // never a serving TE
  EXPECT_EQ(manager.stats().replacements, 0);
  EXPECT_EQ(manager.stats().mttr_count, 0);
  EXPECT_EQ(manager.directory().npus_in_use(), npus_before);  // NPUs conserved
  EXPECT_TRUE(manager.directory().open_pipelines().empty());
  EXPECT_EQ(manager.te(id.value()), nullptr);  // no live binding ever made
  EXPECT_TRUE(manager.tes().empty());
  const auto* meta = manager.directory().Find(id.value());
  ASSERT_NE(meta, nullptr);
  EXPECT_EQ(meta->lifecycle, ctrl::TeDirectory::Lifecycle::kAborted);
}

TEST_F(CtrlStackTest, CrashTeMidPipelineAbortsLikeKill) {
  serving::ClusterManager manager(&sim_, &cluster_, &transfer_);
  serving::ScaleRequest request;
  request.engine = SmallEngine(flowserve::EngineRole::kColocated);
  int callbacks = 0;
  serving::TaskExecutor* delivered = reinterpret_cast<serving::TaskExecutor*>(0x1);
  auto id = manager.ScaleUp(request, [&](serving::TaskExecutor* te,
                                         const serving::ScalingBreakdown&) {
    ++callbacks;
    delivered = te;
  });
  ASSERT_TRUE(id.ok());
  sim_.RunUntil(SToNs(20));  // mid TE-Pre-Load
  auto dropped = manager.CrashTe(id.value(), serving::CrashKind::kTeShell);
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(dropped.value(), 0u);
  sim_.Run();

  EXPECT_EQ(callbacks, 1);
  EXPECT_EQ(delivered, nullptr);
  EXPECT_EQ(manager.stats().scale_aborts, 1);
  EXPECT_EQ(manager.stats().scale_ups, 1);  // launched, not delivered
  EXPECT_EQ(manager.directory().npus_in_use(), 0);
  // Double-kill of the aborted id is rejected.
  EXPECT_FALSE(manager.KillTe(id.value()).ok());
}

// ---------------- CM leader failover ----------------

TEST_F(CtrlStackTest, CmFailoverResumesParkedPipelineExactlyOnce) {
  ctrl::CtrlConfig config;
  config.replicas = 3;
  config.quorum = 2;
  config.replication_latency = MsToNs(1);
  config.lease_duration = SToNs(10);
  ctrl::ControlLog log(&sim_, config);
  serving::ClusterManager manager(&sim_, &cluster_, &transfer_, {}, {}, &log);

  serving::ScaleRequest request;
  request.engine = SmallEngine(flowserve::EngineRole::kColocated);
  int callbacks = 0;
  serving::TaskExecutor* delivered = nullptr;
  ASSERT_TRUE(manager.ScaleUp(request, [&](serving::TaskExecutor* te,
                                           const serving::ScalingBreakdown&) {
                       ++callbacks;
                       delivered = te;
                     })
                  .ok());

  // Crash the leader mid Scaler-Pre; the 12s stage boundary lands inside the
  // ~10s outage and must park rather than advance.
  sim_.RunUntil(SToNs(5));
  ASSERT_TRUE(manager.CrashControlLeader().ok());
  EXPECT_FALSE(manager.leader_up());
  EXPECT_FALSE(manager.CrashControlLeader().ok());  // already down
  auto during_outage = manager.ScaleUp(request, [](serving::TaskExecutor*,
                                                   const serving::ScalingBreakdown&) {});
  EXPECT_EQ(during_outage.status().code(), StatusCode::kUnavailable);

  sim_.Run();
  EXPECT_TRUE(manager.leader_up());
  EXPECT_EQ(manager.control_epoch(), 1);
  EXPECT_EQ(manager.stats().cm_crashes, 1);
  EXPECT_EQ(manager.stats().cm_failovers, 1);
  EXPECT_GE(manager.stats().deferred_ops, 1);
  EXPECT_GT(manager.stats().cm_outage_total, 0);
  // The pipeline delivered exactly one ready TE — no drop, no double-fire.
  EXPECT_EQ(callbacks, 1);
  ASSERT_NE(delivered, nullptr);
  EXPECT_TRUE(delivered->ready());
  EXPECT_EQ(manager.stats().scale_ups, 1);
  EXPECT_EQ(manager.tes().size(), 1u);
  EXPECT_TRUE(manager.directory().open_pipelines().empty());
}

TEST_F(CtrlStackTest, TeCrashDuringCmOutageDetectedAtTakeover) {
  ctrl::CtrlConfig config;
  config.replicas = 3;
  config.quorum = 2;
  config.replication_latency = MsToNs(1);
  config.lease_duration = SToNs(2);
  ctrl::ControlLog log(&sim_, config);
  serving::ClusterManager manager(&sim_, &cluster_, &transfer_, {}, {}, &log);
  manager.ReservePrewarmedPods(2);
  manager.ReservePrewarmedTes(2);
  manager.PreloadModelToDram(0, model::ModelSpec::Tiny1B());
  sim_.Run();

  serving::JeConfig je_config;
  je_config.policy = serving::SchedulingPolicy::kLoadOnly;
  serving::JobExecutor je(&sim_, je_config, serving::PdHeatmap::Default(),
                          serving::MakeOraclePredictor());
  std::vector<serving::TeId> failed_tes;
  manager.AddFailureHandler([&](serving::TeId id) {
    failed_tes.push_back(id);
    je.OnTeFailure(id);
  });
  serving::ScaleRequest replacement;
  replacement.engine = SmallEngine(flowserve::EngineRole::kColocated);
  manager.SetReplacementPolicy(replacement,
                               [&](serving::TaskExecutor* te) { je.AddColocatedTe(te); });

  auto* te = manager.CreateReadyTe(SmallEngine(flowserve::EngineRole::kColocated)).value();
  je.AddColocatedTe(te);
  const serving::TeId victim = te->id();

  sim_.RunUntil(SToNs(1));
  ASSERT_TRUE(manager.CrashControlLeader().ok());
  // The TE dies while no leader is listening: the data plane loses it now,
  // but the report sits in the pod-runtime backlog until takeover.
  auto dropped = manager.CrashTe(victim, serving::CrashKind::kTeShell);
  ASSERT_TRUE(dropped.ok());
  EXPECT_EQ(manager.stats().detections, 0);
  EXPECT_TRUE(failed_tes.empty());

  sim_.Run();
  EXPECT_TRUE(manager.leader_up());
  EXPECT_EQ(manager.stats().detections, 1);
  ASSERT_EQ(failed_tes.size(), 1u);
  EXPECT_EQ(failed_tes[0], victim);
  EXPECT_EQ(manager.stats().replacements, 1);
  EXPECT_EQ(manager.stats().mttr_count, 1);
  // MTTR spans crash -> replacement ready, so it covers the outage remainder.
  EXPECT_GT(manager.stats().mttr_total, 0);
  EXPECT_EQ(je.colocated_count(), 1u);  // replacement joined the group
}

TEST_F(CtrlStackTest, SingleReplicaOutageIsPermanentUntilManualRecovery) {
  serving::ClusterManager manager(&sim_, &cluster_, &transfer_);  // degenerate log
  auto* te = manager.CreateReadyTe(SmallEngine(flowserve::EngineRole::kColocated)).value();
  ASSERT_NE(te, nullptr);

  ASSERT_TRUE(manager.CrashControlLeader().ok());
  sim_.RunUntil(SToNs(60));
  EXPECT_FALSE(manager.leader_up());  // no standby: nobody takes over
  EXPECT_EQ(manager.stats().cm_failovers, 0);
  serving::ScaleRequest request;
  request.engine = SmallEngine(flowserve::EngineRole::kColocated);
  EXPECT_EQ(manager.ScaleUp(request, [](serving::TaskExecutor*,
                                        const serving::ScalingBreakdown&) {})
                .status()
                .code(),
            StatusCode::kUnavailable);
  EXPECT_FALSE(manager.StopTe(te->id()).ok());

  manager.RecoverControlLeader();
  EXPECT_TRUE(manager.leader_up());
  EXPECT_EQ(manager.control_epoch(), 1);
  EXPECT_TRUE(manager.StopTe(te->id()).ok());
}

// ---------------- JE leader failover ----------------

TEST_F(CtrlStackTest, JeFailoverLosesNoRequestsAndFiresHandlersExactlyOnce) {
  ctrl::CtrlConfig config;
  config.replicas = 3;
  config.quorum = 2;
  config.replication_latency = MsToNs(1);
  config.lease_duration = MsToNs(100);
  ctrl::ControlLog log(&sim_, config);
  serving::ClusterManager manager(&sim_, &cluster_, &transfer_, {}, {}, &log);
  serving::JeConfig je_config;
  je_config.policy = serving::SchedulingPolicy::kLoadOnly;
  serving::JobExecutor je(&sim_, je_config, serving::PdHeatmap::Default(),
                          serving::MakeOraclePredictor());
  je.AttachControl(&log, &manager);
  je.AddColocatedTe(manager.CreateReadyTe(SmallEngine(flowserve::EngineRole::kColocated)).value());
  je.AddColocatedTe(manager.CreateReadyTe(SmallEngine(flowserve::EngineRole::kColocated)).value());

  constexpr int kRequests = 12;
  std::map<workload::RequestId, int> terminations;
  int completed = 0, errored = 0;
  for (int i = 1; i <= kRequests; ++i) {
    sim_.ScheduleAt(MsToNs(100 * (i - 1)), [&, i] {
      je.HandleRequest(MakeRequest(i, 256, 32),
                       {nullptr,
                        [&, i](const flowserve::Sequence&) {
                          ++completed;
                          ++terminations[i];
                        },
                        [&, i](const Status&) {
                          ++errored;
                          ++terminations[i];
                        }});
    });
  }
  // Crash mid-stream: some requests in flight (their completions must park),
  // some yet to arrive (they must buffer, then dispatch at takeover).
  sim_.ScheduleAt(MsToNs(650), [&] {
    ASSERT_TRUE(je.CrashLeader().ok());
    EXPECT_FALSE(je.leader_up());
    EXPECT_FALSE(je.HasReadyCapacity());
    EXPECT_EQ(je.ReadyCapacityWeight(), 0);
    EXPECT_FALSE(je.CrashLeader().ok());  // already down
  });
  sim_.Run();

  EXPECT_TRUE(je.leader_up());
  EXPECT_EQ(je.control_epoch(), 1);
  EXPECT_EQ(je.stats().je_crashes, 1);
  EXPECT_EQ(je.stats().je_failovers, 1);
  EXPECT_GT(je.stats().je_outage_total, 0);
  EXPECT_GE(je.stats().queued_arrivals, 1);
  // Zero token loss: every request terminated, each exactly once, none failed.
  EXPECT_EQ(completed, kRequests);
  EXPECT_EQ(errored, 0);
  ASSERT_EQ(terminations.size(), static_cast<size_t>(kRequests));
  for (const auto& [id, count] : terminations) {
    EXPECT_EQ(count, 1) << "request " << id << " terminated " << count << " times";
  }
  EXPECT_TRUE(je.table().outstanding().empty());
}

TEST_F(CtrlStackTest, TeDeathDuringJeOutageReconciledAtTakeover) {
  ctrl::CtrlConfig config;
  config.replicas = 3;
  config.quorum = 2;
  config.replication_latency = MsToNs(1);
  config.lease_duration = MsToNs(200);
  ctrl::ControlLog log(&sim_, config);
  serving::ClusterManager manager(&sim_, &cluster_, &transfer_, {}, {}, &log);
  serving::JeConfig je_config;
  je_config.policy = serving::SchedulingPolicy::kLoadOnly;
  serving::JobExecutor je(&sim_, je_config, serving::PdHeatmap::Default(),
                          serving::MakeOraclePredictor());
  je.AttachControl(&log, &manager);
  auto* te_a = manager.CreateReadyTe(SmallEngine(flowserve::EngineRole::kColocated)).value();
  auto* te_b = manager.CreateReadyTe(SmallEngine(flowserve::EngineRole::kColocated)).value();
  je.AddColocatedTe(te_a);
  je.AddColocatedTe(te_b);

  constexpr int kRequests = 6;
  std::map<workload::RequestId, int> terminations;
  int completed = 0, errored = 0;
  for (int i = 1; i <= kRequests; ++i) {
    sim_.ScheduleAt(MsToNs(80 * i), [&, i] {
      je.HandleRequest(MakeRequest(i, 512, 128),
                       {nullptr,
                        [&, i](const flowserve::Sequence&) {
                          ++completed;
                          ++terminations[i];
                        },
                        [&, i](const Status&) {
                          ++errored;
                          ++terminations[i];
                        }});
    });
  }
  sim_.ScheduleAt(MsToNs(550), [&] { ASSERT_TRUE(je.CrashLeader().ok()); });
  // The CM leader is alive and kills the TE immediately; the JE's handler
  // (registered by AttachControl) parks the failure until its own takeover.
  sim_.ScheduleAt(MsToNs(600),
                  [&] { ASSERT_TRUE(manager.KillTe(te_a->id()).ok()); });
  sim_.Run();

  EXPECT_TRUE(je.leader_up());
  EXPECT_EQ(je.stats().je_failovers, 1);
  EXPECT_EQ(je.stats().failed_tes_handled, 1);
  EXPECT_EQ(je.colocated_count(), 1u);  // the dead TE left the group
  // Every request terminated exactly once; lost jobs were re-dispatched to
  // the survivor rather than erroring.
  EXPECT_EQ(completed + errored, kRequests);
  ASSERT_EQ(terminations.size(), static_cast<size_t>(kRequests));
  for (const auto& [id, count] : terminations) {
    EXPECT_EQ(count, 1) << "request " << id << " terminated " << count << " times";
  }
  EXPECT_EQ(completed, kRequests);
  EXPECT_TRUE(je.table().outstanding().empty());
}

TEST_F(CtrlStackTest, SingleReplicaJeCrashFailsOutstandingAndRejectsArrivals) {
  serving::ClusterManager manager(&sim_, &cluster_, &transfer_);
  serving::JeConfig je_config;
  je_config.policy = serving::SchedulingPolicy::kLoadOnly;
  serving::JobExecutor je(&sim_, je_config, serving::PdHeatmap::Default(),
                          serving::MakeOraclePredictor());  // owned degenerate log
  auto* te = manager.CreateReadyTe(SmallEngine(flowserve::EngineRole::kColocated)).value();
  je.AddColocatedTe(te);

  int completed = 0;
  std::vector<StatusCode> errors;
  for (int i = 1; i <= 3; ++i) {
    je.HandleRequest(MakeRequest(i, 1024, 256),
                     {nullptr, [&](const flowserve::Sequence&) { ++completed; },
                      [&](const Status& status) { errors.push_back(status.code()); }});
  }
  sim_.RunUntil(MsToNs(300));  // all in flight
  ASSERT_TRUE(je.CrashLeader().ok());
  EXPECT_FALSE(je.leader_up());
  // No standby: every outstanding job severed immediately, engine side too.
  ASSERT_EQ(errors.size(), 3u);
  for (StatusCode code : errors) EXPECT_EQ(code, StatusCode::kUnavailable);
  EXPECT_TRUE(je.table().outstanding().empty());

  // Subsequent arrivals are rejected synchronously.
  je.HandleRequest(MakeRequest(9, 64, 8),
                   {nullptr, [&](const flowserve::Sequence&) { ++completed; },
                    [&](const Status& status) { errors.push_back(status.code()); }});
  ASSERT_EQ(errors.size(), 4u);
  EXPECT_EQ(errors.back(), StatusCode::kUnavailable);

  sim_.Run();
  EXPECT_EQ(completed, 0);
  EXPECT_TRUE(te->engine().idle());  // severed sequences were cancelled
  EXPECT_EQ(je.stats().je_crashes, 1);
  EXPECT_EQ(je.stats().je_failovers, 0);
  EXPECT_FALSE(je.leader_up());
}

// ---------------- Golden parity: degenerate log == pre-log tree ----------------

struct GoldenRow {
  uint64_t seed;
  int64_t completed;
  int64_t errored;
  int64_t crashes;
  int64_t replacements;
  int64_t scale_ups;
  int64_t scale_downs;
  int64_t end_time;
  uint64_t timeline_hash;
  uint64_t metrics_fp;
};

// Captured from the pre-refactor tree (before control-plane state moved onto
// the log) by running this exact scenario. The degenerate single-replica
// zero-latency log MUST reproduce these bit-for-bit: any event-stream drift
// in the refactor shows up as a hash mismatch here.
constexpr GoldenRow kGolden[] = {
    {11ull, 58, 0, 2, 2, 6, 6, 40560063275ll, 0xfddb339fbba5727cull, 0xb344e94c032cf0d1ull},
    {23ull, 68, 0, 1, 1, 3, 3, 40560063275ll, 0x662823d88727037bull, 0xeb2254c033da04c5ull},
    {47ull, 63, 0, 3, 3, 8, 4, 46062566707ll, 0x4d6ea56212654424ull, 0xff986b5e5a6e85dbull},
};

GoldenRow RunGoldenStack(uint64_t seed) {
  sim::Simulator sim;
  obs::MetricsRegistry metrics;
  sim.SetMetrics(&metrics);
  hw::ClusterConfig cluster_config;
  cluster_config.num_machines = 3;
  hw::Cluster cluster(&sim, cluster_config);
  distflow::TransferEngine transfer(&sim, &cluster, distflow::DistFlowConfig{});
  serving::ClusterManager manager(&sim, &cluster, &transfer);
  manager.ReservePrewarmedPods(6);
  manager.ReservePrewarmedTes(6);
  for (int m = 0; m < cluster.num_machines(); ++m) {
    manager.PreloadModelToDram(m, model::ModelSpec::Tiny1B());
  }
  sim.Run();

  serving::JeConfig je_config;
  je_config.policy = serving::SchedulingPolicy::kLoadOnly;
  serving::JobExecutor je(&sim, je_config, serving::PdHeatmap::Default(),
                          serving::MakeOraclePredictor());
  manager.AddFailureHandler([&](serving::TeId id) { je.OnTeFailure(id); });
  serving::ScaleRequest replacement;
  replacement.engine = SmallEngine(flowserve::EngineRole::kColocated);
  manager.SetReplacementPolicy(replacement,
                               [&](serving::TaskExecutor* te) { je.AddColocatedTe(te); });

  std::vector<distflow::EndpointId> endpoints;
  auto* colocated =
      manager.CreateReadyTe(SmallEngine(flowserve::EngineRole::kColocated)).value();
  je.AddColocatedTe(colocated);
  endpoints.push_back(colocated->id());
  auto* prefill =
      manager.CreateReadyTe(SmallEngine(flowserve::EngineRole::kPrefillOnly)).value();
  je.AddPrefillTe(prefill);
  endpoints.push_back(prefill->id());
  auto* decode =
      manager.CreateReadyTe(SmallEngine(flowserve::EngineRole::kDecodeOnly)).value();
  je.AddDecodeTe(decode);
  endpoints.push_back(decode->id());
  EXPECT_TRUE(transfer.LinkCluster(endpoints, nullptr).ok());
  sim.Run();

  serving::AutoscalerConfig as;
  as.policy = "predictive";
  as.check_interval = MsToNs(500);
  as.scale_up_queue_depth = 4;
  as.scale_down_queue_depth = 1;
  as.min_tes = 1;
  as.max_tes = 3;
  as.te_capacity_rps = 2.0;
  as.down_stable_ticks = 3;
  serving::ScaleRequest request;
  request.engine = SmallEngine(flowserve::EngineRole::kColocated);
  manager.StartAutoscaler(&je, as, request);

  faults::FaultInjector injector(&sim, &manager, seed);
  faults::FaultPlanConfig plan;
  plan.count = 5;
  plan.window_start = SToNs(2);
  plan.window_end = SToNs(25);
  injector.ScheduleAll(faults::FaultInjector::GeneratePlan(seed, plan));

  auto trace_config = workload::TraceGenerator::InternalTrace(2.0, 30.0, seed);
  trace_config.prefill = workload::LengthDistribution{512, 0.3, 64, 2048};
  trace_config.decode = workload::LengthDistribution{64, 0.4, 8, 256};
  auto trace =
      workload::TraceGenerator(trace_config).GenerateBursty(0.5, 6.0, 12.0, /*sharpness=*/3.0);
  const TimeNs t0 = sim.Now();

  GoldenRow row{};
  row.seed = seed;
  uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](uint64_t v) {
    hash ^= v;
    hash *= 1099511628211ull;
  };
  for (auto& spec : trace) {
    spec.arrival += t0;
    sim.ScheduleAt(spec.arrival, [&, spec] {
      je.HandleRequest(spec, {nullptr,
                              [&, id = spec.id](const flowserve::Sequence& seq) {
                                ++row.completed;
                                mix(id);
                                mix(static_cast<uint64_t>(seq.first_token_time));
                                mix(static_cast<uint64_t>(seq.finish_time));
                              },
                              [&, id = spec.id](const Status&) {
                                ++row.errored;
                                mix(id * 2 + 1);
                              }});
    });
  }
  sim.RunUntil(t0 + SToNs(40));
  manager.StopAutoscaler();
  sim.Run();

  row.crashes = manager.stats().crashes;
  row.replacements = manager.stats().replacements;
  row.scale_ups = manager.stats().scale_ups;
  row.scale_downs = manager.stats().scale_downs;
  row.end_time = sim.Now();
  row.timeline_hash = hash;
  row.metrics_fp = metrics.Fingerprint();
  return row;
}

TEST(CtrlParityTest, DegenerateLogMatchesPreLogGoldensAcrossThreeSeeds) {
  for (const GoldenRow& want : kGolden) {
    const GoldenRow got = RunGoldenStack(want.seed);
    EXPECT_EQ(got.completed, want.completed) << "seed " << want.seed;
    EXPECT_EQ(got.errored, want.errored) << "seed " << want.seed;
    EXPECT_EQ(got.crashes, want.crashes) << "seed " << want.seed;
    EXPECT_EQ(got.replacements, want.replacements) << "seed " << want.seed;
    EXPECT_EQ(got.scale_ups, want.scale_ups) << "seed " << want.seed;
    EXPECT_EQ(got.scale_downs, want.scale_downs) << "seed " << want.seed;
    EXPECT_EQ(got.end_time, want.end_time) << "seed " << want.seed;
    EXPECT_EQ(got.timeline_hash, want.timeline_hash) << "seed " << want.seed;
    EXPECT_EQ(got.metrics_fp, want.metrics_fp) << "seed " << want.seed;
  }
}

}  // namespace
}  // namespace deepserve
