// Post-training pipeline tests: fine-tuning jobs (preprocess -> train ->
// evaluate) sharing the NPU pool with serving.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/time_units.h"
#include "distflow/distflow.h"
#include "hw/cluster.h"
#include "serving/cluster_manager.h"
#include "serving/finetune.h"
#include "sim/simulator.h"

namespace deepserve::serving {
namespace {

class FineTuneTest : public ::testing::Test {
 protected:
  FineTuneTest() {
    hw::ClusterConfig cc;
    cc.num_machines = 2;  // 16 NPUs
    cluster_ = std::make_unique<hw::Cluster>(&sim_, cc);
    transfer_ = std::make_unique<distflow::TransferEngine>(&sim_, cluster_.get(),
                                                           distflow::DistFlowConfig{});
    manager_ = std::make_unique<ClusterManager>(&sim_, cluster_.get(), transfer_.get());
    ft_ = std::make_unique<FineTuneJobExecutor>(&sim_, manager_.get());
  }

  FineTuneRequest SmallRequest(uint64_t id) {
    FineTuneRequest request;
    request.id = id;
    request.base_model = model::ModelSpec::Tiny1B();
    request.parallelism = {8, 1, 1};
    request.dataset_tokens = 1'000'000;
    return request;
  }

  sim::Simulator sim_;
  std::unique_ptr<hw::Cluster> cluster_;
  std::unique_ptr<distflow::TransferEngine> transfer_;
  std::unique_ptr<ClusterManager> manager_;
  std::unique_ptr<FineTuneJobExecutor> ft_;
};

TEST_F(FineTuneTest, PipelineRunsThreeTasksInOrder) {
  FineTuneResult result;
  ASSERT_TRUE(ft_->Submit(SmallRequest(1), [&](const FineTuneResult& r) { result = r; }).ok());
  sim_.Run();
  EXPECT_TRUE(result.succeeded);
  EXPECT_GT(result.preprocess_done, 0);
  EXPECT_GT(result.train_done, result.preprocess_done);
  EXPECT_GT(result.evaluate_done, result.train_done);
  ASSERT_EQ(ft_->jobs().size(), 1u);
  EXPECT_EQ(ft_->jobs()[0].type, JobType::kFineTune);
  EXPECT_EQ(ft_->jobs()[0].state, JobState::kCompleted);
  ASSERT_EQ(ft_->tasks().size(), 3u);
  EXPECT_EQ(ft_->tasks()[0].type, TaskType::kPreprocess);
  EXPECT_EQ(ft_->tasks()[1].type, TaskType::kTrain);
  EXPECT_EQ(ft_->tasks()[2].type, TaskType::kEvaluate);
}

TEST_F(FineTuneTest, TrainingDominatesAndScalesWithDataset) {
  auto small = SmallRequest(1);
  auto big = SmallRequest(2);
  big.dataset_tokens = 10'000'000;
  EXPECT_GT(ft_->EstimateTrainDuration(big), 3 * ft_->EstimateTrainDuration(small));
  // More NPUs shorten training.
  auto wide = SmallRequest(3);
  wide.parallelism = {16, 1, 1};
  EXPECT_LT(ft_->EstimateTrainDuration(wide), ft_->EstimateTrainDuration(small));
}

TEST_F(FineTuneTest, RejectsBadRequests) {
  auto request = SmallRequest(1);
  request.dataset_tokens = 0;
  EXPECT_FALSE(ft_->Submit(request, nullptr).ok());
  request = SmallRequest(2);
  request.parallelism = {64, 1, 1};  // > 16 NPUs in this cluster
  EXPECT_FALSE(ft_->Submit(request, nullptr).ok());
}

TEST_F(FineTuneTest, QueuesWhenClusterBusyAndRunsAfterRelease) {
  // Serving occupies the whole cluster.
  flowserve::EngineConfig engine;
  engine.model = model::ModelSpec::Tiny1B();
  engine.parallelism = {8, 1, 1};
  auto te1 = manager_->CreateReadyTe(engine).value();
  auto te2 = manager_->CreateReadyTe(engine).value();
  (void)te2;
  bool done = false;
  ASSERT_TRUE(ft_->Submit(SmallRequest(1), [&](const FineTuneResult& r) {
    done = r.succeeded;
  }).ok());
  sim_.RunUntil(SToNs(30));
  EXPECT_FALSE(done);  // no NPUs free
  EXPECT_GT(ft_->stats().waiting_for_npus, 0);
  // A serving scale-down releases 8 NPUs; the queued job proceeds.
  ASSERT_TRUE(manager_->StopTe(te1->id()).ok());
  sim_.RunUntil(SToNs(4000));
  EXPECT_TRUE(done);
}

TEST_F(FineTuneTest, SequentialJobsShareNpus) {
  // Two 16-NPU jobs on a 16-NPU cluster must serialize.
  auto wide = SmallRequest(1);
  wide.parallelism = {16, 1, 1};
  TimeNs first_done = 0;
  TimeNs second_done = 0;
  ASSERT_TRUE(ft_->Submit(wide, [&](const FineTuneResult& r) {
    first_done = r.evaluate_done;
  }).ok());
  auto wide2 = SmallRequest(2);
  wide2.parallelism = {16, 1, 1};
  ASSERT_TRUE(ft_->Submit(wide2, [&](const FineTuneResult& r) {
    second_done = r.evaluate_done;
  }).ok());
  sim_.Run();
  EXPECT_GT(first_done, 0);
  EXPECT_GE(second_done, first_done);  // strictly after: NPUs were shared
  EXPECT_EQ(ft_->stats().completed, 2);
}

}  // namespace
}  // namespace deepserve::serving
