#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/time_units.h"
#include "common/types.h"
#include "flowserve/engine.h"
#include "sim/simulator.h"
#include "workload/metrics.h"
#include "workload/request.h"
#include "workload/tracegen.h"

namespace deepserve::flowserve {
namespace {

using workload::RequestSpec;

// A small fast model configuration for unit tests.
EngineConfig TestConfig() {
  EngineConfig config;
  config.model = model::ModelSpec::Tiny1B();
  config.parallelism = {1, 1, 1};
  config.max_tokens_per_step = 4096;
  config.prefill_chunk_tokens = 512;
  config.kv_block_capacity_override = 4096;
  return config;
}

RequestSpec MakeRequest(workload::RequestId id, int64_t prefill, int64_t decode,
                        TokenId base = 1000) {
  RequestSpec spec;
  spec.id = id;
  spec.arrival = 0;
  spec.decode_len = decode;
  spec.prompt.reserve(static_cast<size_t>(prefill));
  for (int64_t i = 0; i < prefill; ++i) {
    spec.prompt.push_back(base + static_cast<TokenId>(i % 7000));
  }
  return spec;
}

class EngineTest : public ::testing::Test {
 protected:
  void Start(EngineConfig config) { engine_ = std::make_unique<Engine>(&sim_, config); }

  // Submits and runs to completion; returns the finished-sequence snapshot.
  struct Outcome {
    TimeNs first_token = 0;
    TimeNs finish = 0;
    int64_t reused = 0;
    bool completed = false;
  };
  Outcome Run(const RequestSpec& spec) {
    Outcome out;
    engine_->Submit(
        spec, [&](const Sequence& seq) { out.first_token = seq.first_token_time; },
        [&](const Sequence& seq) {
          out.finish = seq.finish_time;
          out.reused = seq.reused_tokens;
          out.completed = true;
        });
    sim_.Run();
    return out;
  }

  sim::Simulator sim_;
  std::unique_ptr<Engine> engine_;
};

TEST_F(EngineTest, SingleRequestCompletes) {
  Start(TestConfig());
  auto out = Run(MakeRequest(1, 512, 32));
  EXPECT_TRUE(out.completed);
  EXPECT_GT(out.first_token, 0);
  EXPECT_GT(out.finish, out.first_token);
  EXPECT_EQ(engine_->stats().completed, 1);
  EXPECT_TRUE(engine_->idle());
}

TEST_F(EngineTest, DecodeTokensMatchTarget) {
  Start(TestConfig());
  Run(MakeRequest(1, 256, 64));
  // Prefill emits token 1; decode generates the remaining 63.
  EXPECT_EQ(engine_->stats().decode_tokens_generated, 63);
  EXPECT_EQ(engine_->stats().prefill_tokens_processed, 256);
}

TEST_F(EngineTest, SingleTokenRequest) {
  Start(TestConfig());
  auto out = Run(MakeRequest(1, 128, 1));
  EXPECT_TRUE(out.completed);
  EXPECT_EQ(out.first_token, out.finish);
  EXPECT_EQ(engine_->stats().decode_tokens_generated, 0);
}

TEST_F(EngineTest, TtftGrowsWithPromptLength) {
  Start(TestConfig());
  auto small = Run(MakeRequest(1, 256, 2, 100));
  sim::Simulator sim2;
  Engine engine2(&sim2, TestConfig());
  TimeNs big_first = 0;
  engine2.Submit(MakeRequest(2, 4096, 2, 30000),
                 [&](const Sequence& seq) { big_first = seq.first_token_time; },
                 [](const Sequence&) {});
  sim2.Run();
  EXPECT_GT(big_first, small.first_token);
}

TEST_F(EngineTest, PrefixCacheReuseAcrossRequests) {
  Start(TestConfig());
  auto first = Run(MakeRequest(1, 1024, 8));
  EXPECT_EQ(first.reused, 0);
  // Identical prompt: everything except the final partial block is reused.
  auto second = Run(MakeRequest(2, 1024, 8));
  EXPECT_GE(second.reused, 1024 - 2 * 16);
  EXPECT_GT(engine_->stats().reused_tokens, 0);
  // Reuse shortens TTFT (relative to arrival-at-submit timings).
  EXPECT_LT(second.finish - second.first_token + 1, first.finish + 1);
}

TEST_F(EngineTest, CacheDisabledMeansNoReuse) {
  auto config = TestConfig();
  config.enable_prefix_caching = false;
  Start(config);
  Run(MakeRequest(1, 1024, 8));
  auto second = Run(MakeRequest(2, 1024, 8));
  EXPECT_EQ(second.reused, 0);
}

TEST_F(EngineTest, ContinuousBatchingOverlapsRequests) {
  Start(TestConfig());
  workload::MetricsCollector metrics;
  int completed = 0;
  for (int i = 0; i < 8; ++i) {
    engine_->Submit(MakeRequest(static_cast<workload::RequestId>(i + 1), 512, 64,
                                static_cast<TokenId>(100 + 8000 * i)),
                    nullptr, [&](const Sequence&) { ++completed; });
  }
  sim_.Run();
  EXPECT_EQ(completed, 8);
  // Batched decode: total steps far below 8 sequential runs' worth.
  EXPECT_LT(engine_->stats().steps, 8 * 70);
}

TEST_F(EngineTest, ChunkedPrefillSplitsLongPrompts) {
  auto config = TestConfig();
  config.prefill_chunk_tokens = 256;
  Start(config);
  Run(MakeRequest(1, 2048, 2));
  // 2048 tokens at 256/step = 8 prefill steps minimum.
  EXPECT_GE(engine_->stats().steps, 8);
}

TEST_F(EngineTest, AsyncSchedulingBeatsSyncOnCpuBoundBatches) {
  auto run_version = [&](EngineFeatures features) {
    sim::Simulator sim;
    auto config = TestConfig();
    config.features = features;
    Engine engine(&sim, config);
    int done = 0;
    for (int i = 0; i < 16; ++i) {
      engine.Submit(MakeRequest(static_cast<workload::RequestId>(i + 1), 128, 128,
                                static_cast<TokenId>(100 + 500 * i)),
                    nullptr, [&](const Sequence&) { ++done; });
    }
    sim.Run();
    EXPECT_EQ(done, 16);
    return sim.Now();
  };
  TimeNs v1 = run_version(EngineFeatures::V1());
  TimeNs v2 = run_version(EngineFeatures::V2());
  TimeNs v3 = run_version(EngineFeatures::V3());
  EXPECT_GT(v1, v2);
  EXPECT_GT(v2, v3);
}

TEST_F(EngineTest, PreemptionRecoversFromKvPressure) {
  auto config = TestConfig();
  config.kv_block_capacity_override = 80;  // tiny KV space
  Start(config);
  int completed = 0;
  for (int i = 0; i < 4; ++i) {
    engine_->Submit(MakeRequest(static_cast<workload::RequestId>(i + 1), 512, 256,
                                static_cast<TokenId>(100 + 900 * i)),
                    nullptr, [&](const Sequence&) { ++completed; });
  }
  sim_.Run();
  EXPECT_EQ(completed, 4);
  EXPECT_GT(engine_->stats().preemptions, 0);
}

TEST_F(EngineTest, PrefillOnlyRoleEmitsFirstTokenAndHandsOff) {
  auto config = TestConfig();
  config.role = EngineRole::kPrefillOnly;
  Start(config);
  Bytes sent_bytes = 0;
  engine_->SetKvSendFn([&](const Sequence&, Bytes bytes, std::function<void()> done) {
    sent_bytes = bytes;
    sim_.ScheduleAfter(MsToNs(5), std::move(done));
  });
  auto out = Run(MakeRequest(1, 512, 100));
  EXPECT_TRUE(out.completed);
  EXPECT_GT(out.first_token, 0);
  EXPECT_GT(sent_bytes, 0u);
  // Decode never ran here.
  EXPECT_EQ(engine_->stats().decode_tokens_generated, 0);
}

TEST_F(EngineTest, ByLayerTransferMovesLessResidualKv) {
  auto measure = [&](KvTransferMode mode) {
    sim::Simulator sim;
    auto config = TestConfig();
    config.role = EngineRole::kPrefillOnly;
    config.kv_transfer_mode = mode;
    Engine engine(&sim, config);
    Bytes sent = 0;
    engine.SetKvSendFn([&](const Sequence&, Bytes bytes, std::function<void()> done) {
      sent = bytes;
      sim.ScheduleAfter(0, std::move(done));
    });
    engine.Submit(MakeRequest(1, 512, 10), nullptr, [](const Sequence&) {});
    sim.Run();
    return sent;
  };
  Bytes by_req = measure(KvTransferMode::kByRequest);
  Bytes by_layer = measure(KvTransferMode::kByLayer);
  EXPECT_EQ(by_req, by_layer * 16);  // Tiny1B has 16 layers
}

TEST_F(EngineTest, DecodeOnlyRoleAcceptsPrefilled) {
  auto config = TestConfig();
  config.role = EngineRole::kDecodeOnly;
  Start(config);
  bool completed = false;
  ASSERT_TRUE(engine_
                  ->SubmitPrefilled(MakeRequest(1, 512, 64),
                                    [&](const Sequence&) { completed = true; })
                  .ok());
  sim_.Run();
  EXPECT_TRUE(completed);
  EXPECT_EQ(engine_->stats().decode_tokens_generated, 63);
  EXPECT_EQ(engine_->stats().prefill_tokens_processed, 0);
}

TEST_F(EngineTest, SubmitPrefilledFailsWhenContextCannotFit) {
  auto config = TestConfig();
  config.role = EngineRole::kDecodeOnly;
  config.kv_block_capacity_override = 8;
  Start(config);
  EXPECT_FALSE(engine_->SubmitPrefilled(MakeRequest(1, 512, 4), nullptr).ok());
}

TEST_F(EngineTest, ExplicitContextCaching) {
  Start(TestConfig());
  auto spec = MakeRequest(1, 1024, 4);
  spec.context_id = "session-42";
  Run(spec);
  // Same id, different (longer) prompt suffix: ID match still reuses prefix.
  auto follow = MakeRequest(2, 1024, 4);
  follow.context_id = "session-42";
  auto out = Run(follow);
  EXPECT_GT(out.reused, 0);
}

TEST_F(EngineTest, PipelineParallelStepsRotateMicroBatches) {
  auto config = TestConfig();
  config.parallelism = {1, 4, 1};
  Start(config);
  int completed = 0;
  for (int i = 0; i < 8; ++i) {
    engine_->Submit(MakeRequest(static_cast<workload::RequestId>(i + 1), 512, 32,
                                static_cast<TokenId>(100 + 3000 * i)),
                    nullptr, [&](const Sequence&) { ++completed; });
  }
  sim_.Run();
  EXPECT_EQ(completed, 8);
}

TEST_F(EngineTest, PpChunkSpreadingImprovesTtft) {
  auto measure = [&](bool spread) {
    sim::Simulator sim;
    auto config = TestConfig();
    config.parallelism = {1, 4, 1};
    config.prefill_chunk_tokens = 256;
    config.pp_spread_chunks = spread;
    Engine engine(&sim, config);
    TimeNs first = 0;
    engine.Submit(MakeRequest(1, 4096, 4), [&](const Sequence& seq) { first = seq.first_token_time; },
                  [](const Sequence&) {});
    // Background decodes keep all micro-batches busy.
    for (int i = 0; i < 8; ++i) {
      engine.Submit(MakeRequest(static_cast<workload::RequestId>(100 + i), 64, 256,
                                static_cast<TokenId>(20000 + 700 * i)),
                    nullptr, [](const Sequence&) {});
    }
    sim.Run();
    return first;
  };
  TimeNs spread_ttft = measure(true);
  TimeNs sticky_ttft = measure(false);
  // The paper reports >= 20% TTFT reduction from spreading chunks.
  EXPECT_LT(static_cast<double>(spread_ttft), 0.8 * static_cast<double>(sticky_ttft));
}

TEST_F(EngineTest, DataParallelGroupsShareLoad) {
  auto config = TestConfig();
  config.parallelism = {1, 1, 2};
  Start(config);
  int completed = 0;
  for (int i = 0; i < 8; ++i) {
    engine_->Submit(MakeRequest(static_cast<workload::RequestId>(i + 1), 256, 32,
                                static_cast<TokenId>(100 + 2000 * i)),
                    nullptr, [&](const Sequence&) { ++completed; });
  }
  sim_.Run();
  EXPECT_EQ(completed, 8);
  // Both DP groups hold cache entries (requests were spread).
  EXPECT_GT(engine_->rtc(0).index_nodes(), 0u);
  EXPECT_GT(engine_->rtc(1).index_nodes(), 0u);
}

TEST_F(EngineTest, DpGroupsHaveIsolatedCaches) {
  auto config = TestConfig();
  config.parallelism = {1, 1, 2};
  Start(config);
  Run(MakeRequest(1, 1024, 4));
  // The entry lives in exactly one group's RTC replica.
  auto tokens = MakeRequest(1, 1024, 4).prompt;
  bool g0 = engine_->rtc(0).MatchByPrefixToken(tokens).hit();
  bool g1 = engine_->rtc(1).MatchByPrefixToken(tokens).hit();
  EXPECT_NE(g0, g1);
}

TEST_F(EngineTest, LoadInfoReflectsRunningWork) {
  Start(TestConfig());
  engine_->Submit(MakeRequest(1, 2048, 512), nullptr, [](const Sequence&) {});
  sim_.RunUntil(MsToNs(400));
  auto load = engine_->load();
  EXPECT_EQ(load.waiting + load.running, 1);
  sim_.Run();
  EXPECT_EQ(engine_->load().running, 0);
  EXPECT_TRUE(engine_->idle());
}

TEST_F(EngineTest, StatsAccounting) {
  Start(TestConfig());
  Run(MakeRequest(1, 512, 16));
  const auto& stats = engine_->stats();
  EXPECT_EQ(stats.submitted, 1);
  EXPECT_EQ(stats.completed, 1);
  EXPECT_GT(stats.steps, 0);
  EXPECT_GT(stats.npu_busy, 0);
  EXPECT_GT(stats.cpu_sched_total, 0);
}

TEST_F(EngineTest, CancelDuringInFlightStep) {
  Start(TestConfig());
  bool completed = false;
  engine_->Submit(MakeRequest(7, 512, 50), nullptr,
                  [&](const Sequence&) { completed = true; });
  // Advance until the first step has been issued but not yet completed.
  while (engine_->stats().steps < 1 && sim_.Step()) {
  }
  ASSERT_EQ(engine_->stats().steps, 1);
  ASSERT_TRUE(engine_->Cancel(7).ok());
  sim_.Run();  // the in-flight step's completion lands on a dead sequence
  EXPECT_FALSE(completed);
  EXPECT_EQ(engine_->stats().cancelled, 1);
  EXPECT_EQ(engine_->stats().completed, 0);
  EXPECT_TRUE(engine_->idle());
  // Every block pin died with the cancellation.
  EXPECT_TRUE(engine_->rtc().EnsureNpuFree(engine_->kv_block_capacity()).ok());
  EXPECT_FALSE(engine_->Cancel(7).ok());
}

TEST_F(EngineTest, CancelDuringWaitingPopulate) {
  auto config = TestConfig();
  config.populate_bandwidth_gbps = 1e6;  // fetch always beats recompute
  Start(config);
  // Make KV transfers slow enough to park the request mid-populate.
  engine_->SetRtcTransferFn(
      [this](rtc::Tier, rtc::Tier, Bytes, std::function<void()> done) {
        sim_.ScheduleAfter(MsToNs(10), std::move(done));
      });
  auto spec = MakeRequest(1, 256, 2);
  ASSERT_TRUE(Run(spec).completed);  // warm the prefix cache
  // Demote the cached prompt: copy to DRAM, then drop its NPU residency.
  auto match = engine_->rtc().MatchByPrefixToken(spec.prompt);
  ASSERT_GT(match.matched_tokens, 0);
  engine_->rtc().Copy(match.blocks, rtc::Tier::kDram, [] {});
  sim_.Run();
  ASSERT_TRUE(engine_->rtc().EnsureNpuFree(engine_->kv_block_capacity()).ok());

  // Same prompt again: the match is off-NPU and cheap to fetch, so the
  // request parks in kWaitingPopulate while the (slow) transfer runs.
  bool completed = false;
  engine_->Submit(MakeRequest(2, 256, 2), nullptr,
                  [&](const Sequence&) { completed = true; });
  while (engine_->stats().populates_started < 1 && sim_.Step()) {
  }
  ASSERT_EQ(engine_->stats().populates_started, 1);
  ASSERT_TRUE(engine_->Cancel(2).ok());
  sim_.Run();  // the in-flight populate transfer still lands harmlessly
  EXPECT_FALSE(completed);
  EXPECT_EQ(engine_->stats().cancelled, 1);
  EXPECT_EQ(engine_->stats().completed, 1);  // only the warm-up request
  EXPECT_TRUE(engine_->idle());
  // Exactly the repopulated cached prefix remains on-NPU (15 of the 16
  // matched blocks; truncation dropped the tail block): the cancelled
  // sequence leaked neither its acquisitions nor the populate pins.
  EXPECT_EQ(engine_->rtc().pool().used(rtc::Tier::kNpu), 15);
  // The populated blocks are still a usable cache entry.
  auto third = Run(MakeRequest(3, 256, 2));
  EXPECT_TRUE(third.completed);
  EXPECT_EQ(third.reused, 15 * 16);
}

// Parameterized sweep: engines complete all work across batch-size and
// prompt-length combinations without deadlock or leak.
class EngineSweepTest : public ::testing::TestWithParam<std::tuple<int, int64_t, int64_t>> {};

TEST_P(EngineSweepTest, AllRequestsComplete) {
  auto [count, prefill, decode] = GetParam();
  sim::Simulator sim;
  Engine engine(&sim, TestConfig());
  int completed = 0;
  for (int i = 0; i < count; ++i) {
    engine.Submit(MakeRequest(static_cast<workload::RequestId>(i + 1), prefill, decode,
                              static_cast<TokenId>(100 + 997 * i)),
                  nullptr, [&](const Sequence&) { ++completed; });
  }
  sim.Run();
  EXPECT_EQ(completed, count);
  EXPECT_TRUE(engine.idle());
  EXPECT_EQ(engine.rtc().pool().used(rtc::Tier::kNpu),
            static_cast<int64_t>(engine.rtc().pool().used(rtc::Tier::kNpu)));
  // All sequence pins released: every remaining block is unreferenced cache.
  EXPECT_EQ(engine.load().running, 0);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, EngineSweepTest,
    ::testing::Values(std::make_tuple(1, 16, 1), std::make_tuple(4, 128, 16),
                      std::make_tuple(16, 512, 64), std::make_tuple(8, 2048, 8),
                      std::make_tuple(2, 4096, 256), std::make_tuple(32, 64, 32)));

}  // namespace
}  // namespace deepserve::flowserve
