// Routing-policy tests: rr golden parity against the pre-RoutePolicy
// frontend, p2c tie-breaking determinism, outlier ejection / half-open state
// machine, retry-budget exhaustion, and hedging.

#include <gtest/gtest.h>

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/time_units.h"
#include "distflow/distflow.h"
#include "faults/fault_injector.h"
#include "hw/cluster.h"
#include "serving/cluster_manager.h"
#include "serving/frontend.h"
#include "serving/job_executor.h"
#include "serving/predictor.h"
#include "serving/route_policy.h"
#include "sim/simulator.h"
#include "workload/tracegen.h"

namespace deepserve {
namespace {

flowserve::EngineConfig SmallEngine(flowserve::EngineRole role) {
  flowserve::EngineConfig config;
  config.model = model::ModelSpec::Tiny1B();
  config.parallelism = {1, 1, 1};
  config.role = role;
  config.kv_block_capacity_override = 4096;
  return config;
}

// ---------------- rr golden parity ----------------
//
// Replays a fixed Poisson trace through a Frontend over three JE replicas of
// unequal capacity (1 / 2 / 1 colocated TEs), kills one replica's only TE
// mid-run, and fingerprints every termination. The numbers below were
// captured from the pre-RoutePolicy round-robin dispatch loop; the default
// "rr" policy must reproduce them bit-for-bit.

struct GoldenRun {
  int64_t completed = 0;
  int64_t errored = 0;   // post-dispatch on_error terminations
  int64_t rejected = 0;  // pre-dispatch non-OK Status
  int64_t je_requests[3] = {0, 0, 0};
  TimeNs end_time = 0;
  uint64_t hash = 1469598103934665603ull;  // FNV-1a over every termination
};

void Mix(uint64_t* hash, uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    *hash ^= (value >> (8 * i)) & 0xff;
    *hash *= 1099511628211ull;
  }
}

GoldenRun RunRrGolden(uint64_t seed) {
  sim::Simulator sim;
  hw::ClusterConfig cc;
  cc.num_machines = 2;
  hw::Cluster cluster(&sim, cc);
  distflow::TransferEngine transfer(&sim, &cluster, distflow::DistFlowConfig{});
  serving::ClusterManager manager(&sim, &cluster, &transfer);

  serving::JeConfig je_config;
  je_config.policy = serving::SchedulingPolicy::kLoadOnly;
  std::vector<std::unique_ptr<serving::JobExecutor>> jes;
  std::vector<serving::TaskExecutor*> tes;  // tes[i] belongs to jes[te_owner[i]]
  const int te_counts[3] = {1, 2, 1};
  for (int i = 0; i < 3; ++i) {
    jes.push_back(std::make_unique<serving::JobExecutor>(
        &sim, je_config, serving::PdHeatmap::Default(), serving::MakeOraclePredictor()));
    for (int t = 0; t < te_counts[i]; ++t) {
      auto te = manager.CreateReadyTe(SmallEngine(flowserve::EngineRole::kColocated));
      DS_CHECK(te.ok()) << te.status().ToString();
      jes.back()->AddColocatedTe(*te);
      tes.push_back(*te);
    }
  }
  manager.AddFailureHandler([&jes](serving::TeId id) {
    for (auto& je : jes) {
      je->OnTeFailure(id);
    }
  });

  serving::Frontend frontend(&sim);
  for (auto& je : jes) {
    frontend.RegisterServingJe("tiny-1b", je.get());
  }

  auto trace_config = workload::TraceGenerator::InternalTrace(8.0, 20.0, seed);
  trace_config.prefill = {256, 0.5, 32, 1024};
  trace_config.decode = {96, 0.5, 8, 384};
  auto trace = workload::TraceGenerator(trace_config).Generate();

  GoldenRun run;
  for (const auto& spec : trace) {
    sim.ScheduleAt(spec.arrival, [&sim, &frontend, &run, spec] {
      serving::ChatRequest request;
      request.model = "tiny-1b";
      request.spec = spec;
      serving::ResponseHandler handler;
      handler.on_complete = [&run, &sim, id = spec.id](const flowserve::Sequence& seq) {
        ++run.completed;
        Mix(&run.hash, static_cast<uint64_t>(id) * 3);
        Mix(&run.hash, static_cast<uint64_t>(seq.first_token_time));
        Mix(&run.hash, static_cast<uint64_t>(seq.finish_time));
        run.end_time = sim.Now();
      };
      handler.on_error = [&run, &sim, id = spec.id](const Status&) {
        ++run.errored;
        Mix(&run.hash, static_cast<uint64_t>(id) * 3 + 1);
        Mix(&run.hash, static_cast<uint64_t>(sim.Now()));
        run.end_time = sim.Now();
      };
      // Pre-dispatch rejections are reported through the returned Status (and
      // counted here via the Status alone, so this harness pins the same
      // numbers on both sides of the exactly-once semantics change).
      if (!frontend.ChatCompletion(request, std::move(handler)).ok()) {
        ++run.rejected;
        Mix(&run.hash, static_cast<uint64_t>(spec.id) * 3 + 2);
      }
    });
  }
  // Replica 2's only TE dies mid-run: its in-flight work errors out (no other
  // TE inside that JE) and the rotation must skip it from then on.
  sim.ScheduleAt(SToNs(6.0), [&manager, &tes] {
    auto killed = manager.KillTe(tes[3]->id());
    DS_CHECK(killed.ok()) << killed.status().ToString();
  });
  sim.Run();
  for (int i = 0; i < 3; ++i) {
    run.je_requests[i] = jes[i]->stats().requests;
  }
  return run;
}

TEST(RoutePolicyGoldenTest, RrBitIdenticalToLegacyRoundRobin) {
  struct Golden {
    uint64_t seed;
    GoldenRun want;
  };
  const Golden kGolden[] = {
      {11, {151, 0, 0, {69, 69, 13}, 19801216755, 4745755052427053333ull}},
      {23, {175, 1, 0, {78, 78, 20}, 20346674678, 17529298780218993052ull}},
      {47, {144, 0, 0, {67, 66, 11}, 20202387117, 5782540372182930604ull}},
  };
  for (const Golden& golden : kGolden) {
    GoldenRun got = RunRrGolden(golden.seed);
    SCOPED_TRACE("seed " + std::to_string(golden.seed));
    EXPECT_EQ(got.completed, golden.want.completed);
    EXPECT_EQ(got.errored, golden.want.errored);
    EXPECT_EQ(got.rejected, golden.want.rejected);
    for (int i = 0; i < 3; ++i) {
      EXPECT_EQ(got.je_requests[i], golden.want.je_requests[i]);
    }
    EXPECT_EQ(got.end_time, golden.want.end_time);
    EXPECT_EQ(got.hash, golden.want.hash);
  }
}

// ---------------- policy units ----------------

TEST(RoutePolicyTest, FactoryRejectsUnknownPolicy) {
  serving::RouteConfig config;
  config.policy = "bogus";
  auto policy = serving::MakeRoutePolicy(config);
  EXPECT_FALSE(policy.ok());
  EXPECT_EQ(policy.status().code(), StatusCode::kInvalidArgument);
}

TEST(RoutePolicyTest, P2cSameSeedSamePickSequence) {
  serving::RouteConfig config;
  config.policy = "p2c";
  config.seed = 7;
  auto a = serving::MakeRoutePolicy(config);
  auto b = serving::MakeRoutePolicy(config);
  ASSERT_TRUE(a.ok() && b.ok());
  std::vector<serving::JeSnapshot> candidates = {{0, 1, 4}, {1, 1, 4}, {2, 1, 4}, {3, 1, 4}};
  serving::RouteContext ctx{candidates, 4, 1, 16, 4};
  for (int round = 0; round < 256; ++round) {
    serving::RouteDecision da = (*a)->Pick(ctx);
    serving::RouteDecision db = (*b)->Pick(ctx);
    EXPECT_FALSE(da.shed);
    EXPECT_EQ(da.choice, db.choice);
    EXPECT_LT(da.choice, candidates.size());
  }
}

TEST(RoutePolicyTest, P2cTieBreaksToLowerReplicaIndexAndLoadWins) {
  serving::RouteConfig config;
  config.policy = "p2c";
  config.seed = 99;
  auto policy = serving::MakeRoutePolicy(config);
  ASSERT_TRUE(policy.ok());
  // Two equally-loaded candidates: the tie must always fall to the lower
  // replica index no matter where the sampling stream is.
  std::vector<serving::JeSnapshot> tied = {{0, 1, 5}, {1, 1, 5}};
  serving::RouteContext tied_ctx{tied, 2, 1, 10, 2};
  for (int round = 0; round < 64; ++round) {
    EXPECT_EQ((*policy)->Pick(tied_ctx).choice, 0u);
  }
  // Unequal load: the less-loaded replica always wins a 2-way draw.
  std::vector<serving::JeSnapshot> skewed = {{0, 1, 9}, {1, 1, 2}};
  serving::RouteContext skewed_ctx{skewed, 2, 1, 11, 2};
  for (int round = 0; round < 64; ++round) {
    EXPECT_EQ((*policy)->Pick(skewed_ctx).choice, 1u);
  }
}

TEST(RoutePolicyTest, PickLeastLoadedNormalizesByWeightAndBreaksTiesDeterministically) {
  // 1 outstanding on 1 slot vs 1 outstanding on 2 slots: the wider replica is
  // less loaded.
  EXPECT_EQ(serving::PickLeastLoaded({{0, 1, 1}, {1, 2, 1}}), 1u);
  // Equal load ratio (2/2 == 1/1): higher weight wins.
  EXPECT_EQ(serving::PickLeastLoaded({{0, 1, 1}, {1, 2, 2}}), 1u);
  // Fully tied: the first (lowest-index) candidate wins.
  EXPECT_EQ(serving::PickLeastLoaded({{0, 2, 3}, {1, 2, 3}}), 0u);
}

// ---------------- outlier ejection state machine ----------------

TEST(OutlierMonitorTest, EjectsAfterConsecutiveErrorsAndReadmitsViaHalfOpenProbe) {
  serving::OutlierMonitor monitor(3, SToNs(5.0), SToNs(20.0));
  TimeNs t = SToNs(100.0);
  EXPECT_TRUE(monitor.Eligible(t));
  EXPECT_FALSE(monitor.OnError(t));
  monitor.OnSuccess();  // a success resets the streak
  EXPECT_EQ(monitor.consecutive_errors(), 0);
  EXPECT_FALSE(monitor.OnError(t));
  EXPECT_FALSE(monitor.OnError(t));
  EXPECT_TRUE(monitor.OnError(t));  // third consecutive error: ejected
  EXPECT_EQ(monitor.state(), serving::OutlierMonitor::State::kEjected);
  EXPECT_EQ(monitor.ejected_until(), t + SToNs(5.0));
  EXPECT_FALSE(monitor.Eligible(t + SToNs(5.0) - 1));

  TimeNs probe_time = t + SToNs(5.0);
  EXPECT_TRUE(monitor.Eligible(probe_time));
  monitor.OnDispatch(probe_time);  // claims the single half-open probe slot
  EXPECT_EQ(monitor.state(), serving::OutlierMonitor::State::kHalfOpen);
  EXPECT_FALSE(monitor.Eligible(probe_time));  // one probe at a time
  monitor.OnSuccess();
  EXPECT_EQ(monitor.state(), serving::OutlierMonitor::State::kHealthy);
  EXPECT_TRUE(monitor.Eligible(probe_time));
}

TEST(OutlierMonitorTest, HalfOpenFailureDoublesBackoffUpToCap) {
  serving::OutlierMonitor monitor(1, SToNs(5.0), SToNs(20.0));
  EXPECT_TRUE(monitor.OnError(0));  // ejection #1: 5s backoff
  EXPECT_EQ(monitor.ejected_until(), SToNs(5.0));
  monitor.OnDispatch(SToNs(5.0));
  EXPECT_TRUE(monitor.OnError(SToNs(6.0)));  // #2: 10s
  EXPECT_EQ(monitor.ejected_until(), SToNs(16.0));
  monitor.OnDispatch(SToNs(16.0));
  EXPECT_TRUE(monitor.OnError(SToNs(17.0)));  // #3: 20s (at the cap)
  EXPECT_EQ(monitor.ejected_until(), SToNs(37.0));
  monitor.OnDispatch(SToNs(37.0));
  EXPECT_TRUE(monitor.OnError(SToNs(38.0)));  // #4: still 20s, capped
  EXPECT_EQ(monitor.ejected_until(), SToNs(58.0));
  EXPECT_EQ(monitor.ejections(), 4);
}

TEST(OutlierMonitorTest, DisabledMonitorNeverEjects) {
  serving::OutlierMonitor monitor(0, SToNs(5.0), SToNs(20.0));
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(monitor.OnError(0));
  }
  EXPECT_TRUE(monitor.Eligible(0));
  EXPECT_EQ(monitor.state(), serving::OutlierMonitor::State::kHealthy);
}

// ---------------- retry budget ----------------

TEST(RetryBudgetTest, FloorBoundsSpendingAndRatioGrowsTheCap) {
  serving::RetryBudget budget(0.5, 2);
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_FALSE(budget.TryAcquire());  // floor exhausted, no requests seen yet
  EXPECT_EQ(budget.spent(), 2);
  EXPECT_EQ(budget.denied(), 1);
  for (int i = 0; i < 4; ++i) {
    budget.OnRequest();
  }
  // cap = 2 + 0.5 * 4 = 4: exactly two more tokens.
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_TRUE(budget.TryAcquire());
  EXPECT_FALSE(budget.TryAcquire());
  EXPECT_EQ(budget.spent(), 4);
  EXPECT_EQ(budget.denied(), 2);
}

TEST(LatencyWindowTest, ExactPercentileOverRetainedWindow) {
  serving::LatencyWindow window;
  EXPECT_EQ(window.Percentile(0.95), 0);  // empty
  for (int i = 1; i <= 100; ++i) {
    window.Add(MsToNs(static_cast<double>(i)));
  }
  EXPECT_EQ(window.Percentile(0.95), MsToNs(96.0));
  EXPECT_EQ(window.Percentile(1.0), MsToNs(100.0));
}

// ---------------- hedging ----------------
//
// One slow replica and one fast one: the hedge fires after the floor delay,
// the fast duplicate finishes first, and the slow primary is cancelled across
// its TE — the engine reclaims the sequence and no second completion lands.

TEST(HedgingTest, HedgeWinsOverSlowPrimaryAndLoserIsCancelled) {
  sim::Simulator sim;
  hw::ClusterConfig cc;
  cc.num_machines = 2;
  hw::Cluster cluster(&sim, cc);
  distflow::TransferEngine transfer(&sim, &cluster, distflow::DistFlowConfig{});
  serving::ClusterManager manager(&sim, &cluster, &transfer);

  serving::JeConfig je_config;
  je_config.policy = serving::SchedulingPolicy::kLoadOnly;
  std::vector<std::unique_ptr<serving::JobExecutor>> jes;
  std::vector<serving::TaskExecutor*> tes;
  for (int i = 0; i < 2; ++i) {
    jes.push_back(std::make_unique<serving::JobExecutor>(
        &sim, je_config, serving::PdHeatmap::Default(), serving::MakeOraclePredictor()));
    auto te = manager.CreateReadyTe(SmallEngine(flowserve::EngineRole::kColocated));
    ASSERT_TRUE(te.ok()) << te.status().ToString();
    jes.back()->AddColocatedTe(*te);
    tes.push_back(*te);
  }

  serving::RouteConfig route;
  route.policy = "rr";
  route.hedge_floor = MsToNs(50.0);
  serving::Frontend frontend(&sim, route);
  for (auto& je : jes) {
    frontend.RegisterServingJe("tiny-1b", je.get());
  }

  // TE 0 — the rr primary's only TE — runs 20x slower from t=1s on.
  faults::FaultInjector injector(&sim, &manager, /*seed=*/1);
  auto plan = faults::FaultInjector::ParseSchedule("slow@1:20x60#0");
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  injector.ScheduleAll(*plan);

  int completions = 0;
  int errors = 0;
  sim.ScheduleAt(SToNs(2.0), [&] {
    serving::ChatRequest request;
    request.model = "tiny-1b";
    request.spec.id = 1;
    request.spec.decode_len = 64;
    for (int i = 0; i < 512; ++i) {
      request.spec.prompt.push_back(700 + static_cast<TokenId>(i % 800));
    }
    serving::ResponseHandler handler;
    handler.on_complete = [&completions](const flowserve::Sequence&) { ++completions; };
    handler.on_error = [&errors](const Status&) { ++errors; };
    Status status = frontend.ChatCompletion(std::move(request), std::move(handler));
    EXPECT_TRUE(status.ok()) << status.ToString();
  });
  sim.Run();

  const serving::FrontendStats& stats = frontend.stats();
  EXPECT_EQ(completions, 1);  // exactly one termination despite two branches
  EXPECT_EQ(errors, 0);
  EXPECT_EQ(stats.hedges_launched, 1);
  EXPECT_EQ(stats.hedge_wins, 1);     // the duplicate finished first
  EXPECT_EQ(stats.hedge_cancels, 1);  // and the slow primary branch was cancelled
  EXPECT_EQ(jes[0]->stats().cancelled, 1);
  EXPECT_EQ(jes[1]->stats().requests, 1);
}

}  // namespace
}  // namespace deepserve
