#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "common/time_units.h"
#include "common/types.h"
#include "hw/npu.h"
#include "rtc/block_pool.h"
#include "rtc/radix_tree.h"
#include "rtc/rtc_executor.h"
#include "rtc/rtc_master.h"
#include "sim/simulator.h"

namespace deepserve::rtc {
namespace {

std::vector<TokenId> Tokens(std::initializer_list<int> ids) {
  std::vector<TokenId> out;
  for (int id : ids) {
    out.push_back(static_cast<TokenId>(id));
  }
  return out;
}

std::vector<TokenId> Iota(int n, int start = 1000) {
  std::vector<TokenId> out(static_cast<size_t>(n));
  std::iota(out.begin(), out.end(), static_cast<TokenId>(start));
  return out;
}

// ---------------- ChainHash / TokensToBlockKeys ----------------

TEST(ChainHashTest, DeterministicAndChainSensitive) {
  auto a = Tokens({1, 2, 3, 4});
  EXPECT_EQ(ChainHash(0, a), ChainHash(0, a));
  EXPECT_NE(ChainHash(0, a), ChainHash(1, a));  // different chain prefix
  auto b = Tokens({1, 2, 3, 5});
  EXPECT_NE(ChainHash(0, a), ChainHash(0, b));
}

TEST(TokensToBlockKeysTest, DropsPartialTail) {
  auto tokens = Iota(35);
  auto keys = TokensToBlockKeys(tokens, 16);
  EXPECT_EQ(keys.size(), 2u);  // 35 tokens -> 2 full 16-token blocks
}

TEST(TokensToBlockKeysTest, PrefixKeysArePrefix) {
  auto tokens = Iota(64);
  auto full = TokensToBlockKeys(tokens, 16);
  auto half = TokensToBlockKeys(std::span(tokens).first(32), 16);
  ASSERT_EQ(full.size(), 4u);
  ASSERT_EQ(half.size(), 2u);
  EXPECT_EQ(full[0], half[0]);
  EXPECT_EQ(full[1], half[1]);
}

TEST(TokensToBlockKeysTest, DivergenceChangesAllLaterKeys) {
  auto a = Iota(48);
  auto b = a;
  b[20] += 1;  // diverge inside block 1
  auto ka = TokensToBlockKeys(a, 16);
  auto kb = TokensToBlockKeys(b, 16);
  EXPECT_EQ(ka[0], kb[0]);
  EXPECT_NE(ka[1], kb[1]);
  EXPECT_NE(ka[2], kb[2]);  // chain hash propagates divergence
}

// ---------------- RadixTree ----------------

struct CountPayload {
  int value = 0;
  CountPayload SplitTail(size_t) { return CountPayload{value}; }
};

TEST(RadixTreeTest, InsertAndExactMatch) {
  RadixTree<CountPayload> tree;
  std::vector<BlockKey> keys = {11, 22, 33};
  tree.Insert(keys, 1);
  auto match = tree.Match(keys);
  EXPECT_EQ(match.matched, 3u);
  EXPECT_EQ(match.partial, nullptr);
}

TEST(RadixTreeTest, PartialMatchOnDivergence) {
  RadixTree<CountPayload> tree;
  std::vector<BlockKey> a = {1, 2, 3, 4};
  tree.Insert(a, 1);
  std::vector<BlockKey> b = {1, 2, 9, 9};
  auto match = tree.Match(b);
  EXPECT_EQ(match.matched, 2u);
  ASSERT_NE(match.partial, nullptr);
  EXPECT_EQ(match.partial_len, 2u);
}

TEST(RadixTreeTest, InsertSplitsSharedPrefix) {
  RadixTree<CountPayload> tree;
  std::vector<BlockKey> a = {1, 2, 3, 4};
  std::vector<BlockKey> b = {1, 2, 7, 8};
  tree.Insert(a, 1);
  tree.Insert(b, 2);
  // Nodes: [1,2] shared, [3,4], [7,8].
  EXPECT_EQ(tree.NodeCount(), 3u);
  EXPECT_EQ(tree.Match(a).matched, 4u);
  EXPECT_EQ(tree.Match(b).matched, 4u);
}

TEST(RadixTreeTest, OnNewCallbackCoversExactlyNewSpans) {
  RadixTree<CountPayload> tree;
  std::vector<BlockKey> a = {1, 2, 3, 4};
  std::vector<std::pair<size_t, size_t>> spans;
  tree.Insert(a, 1, [&](auto&, size_t b, size_t e) { spans.emplace_back(b, e); });
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], std::make_pair(size_t{0}, size_t{4}));
  // Extending by two symbols creates exactly one new node covering [4, 6).
  std::vector<BlockKey> ext = {1, 2, 3, 4, 5, 6};
  spans.clear();
  tree.Insert(ext, 2, [&](auto&, size_t b, size_t e) { spans.emplace_back(b, e); });
  ASSERT_EQ(spans.size(), 1u);
  EXPECT_EQ(spans[0], std::make_pair(size_t{4}, size_t{6}));
}

TEST(RadixTreeTest, SplitPreservesDepthAndParentLinks) {
  RadixTree<CountPayload> tree;
  std::vector<BlockKey> a = {1, 2, 3, 4};
  auto* leaf_a = tree.Insert(a, 1);
  EXPECT_EQ(leaf_a->depth, 4u);
  std::vector<BlockKey> b = {1, 2, 7};
  auto* leaf_b = tree.Insert(b, 2);
  EXPECT_EQ(leaf_b->depth, 3u);
  ASSERT_NE(leaf_b->parent, nullptr);
  EXPECT_EQ(leaf_b->parent->depth, 2u);
  EXPECT_EQ(leaf_b->parent, tree.Match(a).path.front());
}

TEST(RadixTreeTest, LruLeafSelection) {
  RadixTree<CountPayload> tree;
  std::vector<BlockKey> a = {1, 2};
  std::vector<BlockKey> b = {3, 4};
  tree.Insert(a, /*now=*/10);
  tree.Insert(b, /*now=*/20);
  auto* lru = tree.FindLruLeaf([](const auto&) { return true; });
  ASSERT_NE(lru, nullptr);
  EXPECT_EQ(lru->last_access, 10);
  tree.RemoveLeaf(lru);
  EXPECT_EQ(tree.NodeCount(), 1u);
}

TEST(RadixTreeTest, MatchDoesNotCreateNodes) {
  RadixTree<CountPayload> tree;
  std::vector<BlockKey> a = {1, 2, 3};
  tree.Match(a);
  EXPECT_EQ(tree.NodeCount(), 0u);
}

// ---------------- BlockPool ----------------

TEST(BlockPoolTest, AllocateRespectsCapacity) {
  BlockPool pool({.npu_capacity = 4, .dram_capacity = 2});
  auto a = pool.Allocate(4, Tier::kNpu, 0);
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(pool.free_blocks(Tier::kNpu), 0);
  EXPECT_FALSE(pool.Allocate(1, Tier::kNpu, 0).ok());
  EXPECT_TRUE(pool.Allocate(2, Tier::kDram, 0).ok());
}

TEST(BlockPoolTest, FailedAllocateIsAtomic) {
  BlockPool pool({.npu_capacity = 4, .dram_capacity = 0});
  ASSERT_TRUE(pool.Allocate(3, Tier::kNpu, 0).ok());
  EXPECT_FALSE(pool.Allocate(2, Tier::kNpu, 0).ok());
  EXPECT_EQ(pool.used(Tier::kNpu), 3);
}

TEST(BlockPoolTest, UnrefDestroysPrivateBlocks) {
  BlockPool pool({.npu_capacity = 4, .dram_capacity = 4});
  auto blocks = pool.Allocate(2, Tier::kNpu, 0).value();
  pool.Unref(blocks[0]);
  EXPECT_FALSE(pool.Exists(blocks[0]));
  EXPECT_EQ(pool.used(Tier::kNpu), 1);
}

TEST(BlockPoolTest, UnrefKeepsCachedBlocks) {
  BlockPool pool({.npu_capacity = 4, .dram_capacity = 4});
  auto blocks = pool.Allocate(1, Tier::kNpu, 0).value();
  pool.SetKey(blocks[0], 0xabc);
  pool.Unref(blocks[0]);
  EXPECT_TRUE(pool.Exists(blocks[0]));
  EXPECT_EQ(pool.info(blocks[0]).ref_count, 0);
}

TEST(BlockPoolTest, ResidencyBitmaskAndCounters) {
  BlockPool pool({.npu_capacity = 4, .dram_capacity = 4});
  BlockId id = pool.Allocate(1, Tier::kNpu, 0).value()[0];
  ASSERT_TRUE(pool.AddResidency(id, Tier::kDram).ok());
  EXPECT_TRUE(pool.info(id).resident(Tier::kNpu));
  EXPECT_TRUE(pool.info(id).resident(Tier::kDram));
  EXPECT_EQ(pool.used(Tier::kDram), 1);
  pool.DropResidency(id, Tier::kNpu);
  EXPECT_FALSE(pool.info(id).resident(Tier::kNpu));
  EXPECT_EQ(pool.used(Tier::kNpu), 0);
  // Idempotent add/drop.
  ASSERT_TRUE(pool.AddResidency(id, Tier::kDram).ok());
  EXPECT_EQ(pool.used(Tier::kDram), 1);
  pool.DropResidency(id, Tier::kNpu);
}

TEST(BlockPoolTest, DestroyReleasesAllTiers) {
  BlockPool pool({.npu_capacity = 4, .dram_capacity = 4});
  BlockId id = pool.Allocate(1, Tier::kNpu, 0).value()[0];
  ASSERT_TRUE(pool.AddResidency(id, Tier::kDram).ok());
  pool.SetKey(id, 7);
  pool.Unref(id);
  pool.Destroy(id);
  EXPECT_EQ(pool.used(Tier::kNpu), 0);
  EXPECT_EQ(pool.used(Tier::kDram), 0);
  EXPECT_FALSE(pool.Exists(id));
}

TEST(BlockPoolTest, SsdIsUnbounded) {
  BlockPool pool({.npu_capacity = 1, .dram_capacity = 1});
  EXPECT_TRUE(pool.Allocate(1000, Tier::kSsd, 0).ok());
}

// ---------------- RtcMaster ----------------

class RtcMasterTest : public ::testing::Test {
 protected:
  RtcMasterTest() { Reset(64); }
  void Reset(int64_t npu_blocks, bool background_swap = false) {
    RtcConfig config;
    config.block_size = 16;
    config.pool.npu_capacity = npu_blocks;
    config.pool.dram_capacity = 256;
    config.bytes_per_block = 1 << 20;
    config.enable_background_swap = background_swap;
    master_ = std::make_unique<RtcMaster>(&sim_, config);
  }

  // Simulates a prefill: allocate blocks for the tokens, preserve, release.
  std::vector<BlockId> PrefillAndPreserve(const std::vector<TokenId>& tokens) {
    int64_t n = static_cast<int64_t>(tokens.size()) / 16;
    auto blocks = master_->AllocBlocks(n).value();
    master_->Preserve(tokens, blocks);
    master_->Free(blocks);
    return blocks;
  }

  sim::Simulator sim_;
  std::unique_ptr<RtcMaster> master_;
};

TEST_F(RtcMasterTest, MissOnEmptyCache) {
  auto info = master_->MatchByPrefixToken(Iota(64));
  EXPECT_FALSE(info.hit());
  EXPECT_EQ(master_->stats().match_misses, 1);
}

TEST_F(RtcMasterTest, HitAfterPreserve) {
  auto tokens = Iota(64);
  PrefillAndPreserve(tokens);
  auto info = master_->MatchByPrefixToken(tokens);
  EXPECT_EQ(info.matched_tokens, 64);
  EXPECT_EQ(info.npu_tokens, 64);
  EXPECT_FALSE(info.needs_populate());
  EXPECT_EQ(master_->stats().match_hits, 1);
}

TEST_F(RtcMasterTest, PartialPrefixHit) {
  PrefillAndPreserve(Iota(64));
  auto longer = Iota(128);  // same first 64 tokens
  auto info = master_->MatchByPrefixToken(longer);
  EXPECT_EQ(info.matched_tokens, 64);
}

TEST_F(RtcMasterTest, DivergentPromptsShareOnlyCommonBlocks) {
  auto a = Iota(64);
  PrefillAndPreserve(a);
  auto b = a;
  b[40] = 7;  // diverges inside block 2
  auto info = master_->MatchByPrefixToken(b);
  EXPECT_EQ(info.matched_tokens, 32);  // blocks 0 and 1 only
}

TEST_F(RtcMasterTest, AcquirePinsAgainstEviction) {
  auto tokens = Iota(16 * 60);
  PrefillAndPreserve(tokens);
  auto info = master_->MatchByPrefixToken(tokens);
  master_->Acquire(info.blocks);
  // Now demand more blocks than remain: eviction cannot touch pinned blocks.
  EXPECT_FALSE(master_->AllocBlocks(10).ok());
  master_->Free(info.blocks);
  EXPECT_TRUE(master_->AllocBlocks(10).ok());  // eviction now allowed
}

TEST_F(RtcMasterTest, EvictionDiscardsLruEntry) {
  Reset(8);
  auto a = Iota(64, 0);       // 4 blocks
  auto b = Iota(64, 50000);   // 4 blocks, distinct tokens
  PrefillAndPreserve(a);
  sim_.RunUntil(sim_.Now() + 100);
  PrefillAndPreserve(b);
  // Pool full of cached blocks; allocating forces eviction of LRU entry (a).
  auto blocks = master_->AllocBlocks(4);
  ASSERT_TRUE(blocks.ok());
  EXPECT_FALSE(master_->MatchByPrefixToken(a).hit());
  EXPECT_TRUE(master_->MatchByPrefixToken(b).hit());
  EXPECT_GT(master_->stats().discarded_blocks, 0);
}

TEST_F(RtcMasterTest, MatchByIdRoundTrip) {
  auto tokens = Iota(48);
  auto blocks = master_->AllocBlocks(3).value();
  ASSERT_TRUE(master_->PreserveById("ctx-1", tokens, blocks).ok());
  master_->Free(blocks);
  auto info = master_->MatchByID("ctx-1");
  EXPECT_EQ(info.matched_tokens, 48);
  EXPECT_FALSE(master_->MatchByID("ctx-2").hit());
  EXPECT_TRUE(master_->DropById("ctx-1"));
  EXPECT_FALSE(master_->MatchByID("ctx-1").hit());
}

TEST_F(RtcMasterTest, CacheEntriesAreSortedById) {
  auto blocks = master_->AllocBlocks(3).value();
  // Insert in non-sorted id order; the snapshot must come back sorted
  // regardless of unordered_map hash order.
  ASSERT_TRUE(master_->PreserveById("ctx-b", Iota(48, 100), blocks).ok());
  ASSERT_TRUE(
      master_->PreserveById("ctx-a", Iota(32, 2000), std::span(blocks).subspan(0, 2)).ok());
  ASSERT_TRUE(
      master_->PreserveById("ctx-c", Iota(16, 40000), std::span(blocks).subspan(0, 1)).ok());
  master_->Free(blocks);
  auto entries = master_->CacheEntries();
  ASSERT_EQ(entries.size(), 3u);
  EXPECT_EQ(entries[0], (std::pair<std::string, int64_t>{"ctx-a", 32}));
  EXPECT_EQ(entries[1], (std::pair<std::string, int64_t>{"ctx-b", 48}));
  EXPECT_EQ(entries[2], (std::pair<std::string, int64_t>{"ctx-c", 16}));
  EXPECT_TRUE(master_->DropById("ctx-b"));
  EXPECT_EQ(master_->CacheEntries().size(), 2u);
}

TEST_F(RtcMasterTest, PreserveByIdRejectsBadInput) {
  auto blocks = master_->AllocBlocks(1).value();
  EXPECT_FALSE(master_->PreserveById("", Iota(16), blocks).ok());
  EXPECT_FALSE(master_->PreserveById("x", Iota(5), blocks).ok());  // < 1 block
  master_->Free(blocks);
}

TEST_F(RtcMasterTest, IdEntrySurvivesImplicitMatchToo) {
  auto tokens = Iota(48);
  auto blocks = master_->AllocBlocks(3).value();
  ASSERT_TRUE(master_->PreserveById("ctx", tokens, blocks).ok());
  master_->Free(blocks);
  EXPECT_TRUE(master_->MatchByPrefixToken(tokens).hit());
}

TEST_F(RtcMasterTest, CopyToDramThenEvictKeepsEntryMatchable) {
  Reset(8);
  auto tokens = Iota(64);
  auto blocks = master_->AllocBlocks(4).value();
  master_->Preserve(tokens, blocks);
  bool copied = false;
  master_->Copy(blocks, Tier::kDram, [&] { copied = true; });
  sim_.Run();
  EXPECT_TRUE(copied);
  master_->Free(blocks);
  // Fill the NPU: the DRAM-backed entry gets demoted, not discarded.
  ASSERT_TRUE(master_->AllocBlocks(8).ok());
  auto info = master_->MatchByPrefixToken(tokens);
  EXPECT_EQ(info.matched_tokens, 64);
  EXPECT_TRUE(info.needs_populate());
  EXPECT_EQ(info.npu_tokens, 0);
  EXPECT_GT(master_->stats().evicted_blocks, 0);
  EXPECT_EQ(master_->stats().discarded_blocks, 0);
}

TEST_F(RtcMasterTest, PopulateBringsBlocksBack) {
  Reset(8);
  auto tokens = Iota(64);
  auto blocks = master_->AllocBlocks(4).value();
  master_->Preserve(tokens, blocks);
  master_->Copy(blocks, Tier::kDram, nullptr);
  sim_.Run();
  master_->Free(blocks);
  auto filler = master_->AllocBlocks(8).value();  // forces NPU drop
  master_->Free(filler);
  auto info = master_->MatchByPrefixToken(tokens);
  ASSERT_TRUE(info.needs_populate());
  master_->Acquire(info.blocks);
  auto ticket = master_->Populate(info);
  ASSERT_TRUE(ticket.ok());
  EXPECT_EQ(master_->QueryPopulate(*ticket), PopulateState::kInFlight);
  bool ready = false;
  master_->OnPopulateReady(*ticket, [&] { ready = true; });
  sim_.Run();
  EXPECT_TRUE(ready);
  EXPECT_EQ(master_->QueryPopulate(*ticket), PopulateState::kReady);
  auto again = master_->MatchByPrefixToken(tokens);
  EXPECT_EQ(again.npu_tokens, 64);
  master_->Free(info.blocks);
}

TEST_F(RtcMasterTest, PopulateOfResidentBlocksIsInstantlyReady) {
  auto tokens = Iota(64);
  PrefillAndPreserve(tokens);
  auto info = master_->MatchByPrefixToken(tokens);
  master_->Acquire(info.blocks);
  auto ticket = master_->Populate(info);
  ASSERT_TRUE(ticket.ok());
  EXPECT_EQ(master_->QueryPopulate(*ticket), PopulateState::kReady);
  master_->Free(info.blocks);
}

TEST_F(RtcMasterTest, QueryUnknownTicket) {
  EXPECT_EQ(master_->QueryPopulate(9999), PopulateState::kUnknown);
}

TEST_F(RtcMasterTest, TruncateMatchRecomputesResidency) {
  auto tokens = Iota(64);
  PrefillAndPreserve(tokens);
  auto info = master_->MatchByPrefixToken(tokens);
  auto cut = master_->TruncateMatch(info, 40);  // not block aligned -> 32
  EXPECT_EQ(cut.matched_tokens, 32);
  EXPECT_EQ(cut.blocks.size(), 2u);
  EXPECT_EQ(cut.npu_tokens, 32);
  EXPECT_EQ(cut.offnpu_tokens, 0);
}

TEST_F(RtcMasterTest, PrefixCachingDisabled) {
  RtcConfig config;
  config.pool.npu_capacity = 16;
  config.enable_prefix_caching = false;
  RtcMaster master(&sim_, config);
  auto tokens = Iota(64);
  auto blocks = master.AllocBlocks(4).value();
  master.Preserve(tokens, blocks);
  master.Free(blocks);
  EXPECT_FALSE(master.MatchByPrefixToken(tokens).hit());
}

TEST_F(RtcMasterTest, BackgroundSwapDemotesColdBlocks) {
  Reset(16, /*background_swap=*/true);
  // Fill most of the NPU with cold cache (above the 0.85 watermark).
  PrefillAndPreserve(Iota(16 * 7, 0));
  PrefillAndPreserve(Iota(16 * 7, 90000));
  sim_.RunUntil(sim_.Now() + SToNs(2));
  EXPECT_GT(master_->stats().swapped_out_blocks, 0);
  // Entries remain matchable after demotion.
  EXPECT_TRUE(master_->MatchByPrefixToken(Iota(16 * 7, 0)).hit());
}

TEST_F(RtcMasterTest, TokenHitRateTracksReuse) {
  auto tokens = Iota(64);
  master_->MatchByPrefixToken(tokens);  // cold miss: 64 requested, 0 matched
  PrefillAndPreserve(tokens);
  master_->MatchByPrefixToken(tokens);  // hit: 64 requested, 64 matched
  EXPECT_NEAR(master_->stats().TokenHitRate(), 0.5, 0.01);
}

TEST(RtcExecutorTest, MirrorsBlockTrafficOntoNpu) {
  sim::Simulator sim;
  hw::Npu npu(0, 0, hw::NpuSpec::Gen2());
  RtcConfig config;
  config.pool.npu_capacity = 128;
  config.bytes_per_block = 4 << 20;
  RtcMaster master(&sim, config);
  RtcExecutor executor(&npu, config.bytes_per_block);
  master.AddListener(&executor);
  auto blocks = master.AllocBlocks(10).value();
  EXPECT_EQ(npu.hbm_used(), 40ull << 20);
  master.Free(blocks);
  EXPECT_EQ(npu.hbm_used(), 0u);
}

}  // namespace
}  // namespace deepserve::rtc
