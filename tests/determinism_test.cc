// End-to-end determinism golden test: the full stack — PD-disaggregated and
// colocated TEs, the predictive autoscaler with graceful drain, a seeded
// chaos plan, and the metrics registry — must replay bit-identically for the
// same seed. The comparison covers the completion timeline hash (id, first
// token, finish time per request), every ClusterManager/autoscaler counter,
// and MetricsRegistry::Fingerprint() (one word over the full sorted metric
// dump). A different seed must produce a different timeline.

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "common/time_units.h"
#include "ctrl/control_log.h"
#include "distflow/distflow.h"
#include "faults/fault_injector.h"
#include "hw/cluster.h"
#include "model/model_spec.h"
#include "obs/metrics.h"
#include "serving/cluster_manager.h"
#include "serving/job_executor.h"
#include "serving/predictor.h"
#include "sim/simulator.h"
#include "workload/tracegen.h"

namespace deepserve {
namespace {

struct Outcome {
  int64_t requests = 0;
  int64_t completed = 0;
  int64_t errored = 0;
  int64_t double_terminated = 0;
  uint64_t timeline_hash = 0;
  TimeNs end_time = 0;
  int64_t crashes = 0;
  int64_t replacements = 0;
  int64_t scale_ups = 0;
  int64_t scale_downs = 0;
  int64_t drains_completed = 0;
  int64_t drained_seqs = 0;
  int64_t cm_crashes = 0;
  int64_t cm_failovers = 0;
  int64_t je_crashes = 0;
  int64_t je_failovers = 0;
  uint64_t metrics_fingerprint = 0;
  std::string metrics_dump;

  bool operator==(const Outcome& other) const {
    return requests == other.requests && completed == other.completed &&
           errored == other.errored && double_terminated == other.double_terminated &&
           timeline_hash == other.timeline_hash && end_time == other.end_time &&
           crashes == other.crashes && replacements == other.replacements &&
           scale_ups == other.scale_ups && scale_downs == other.scale_downs &&
           drains_completed == other.drains_completed && drained_seqs == other.drained_seqs &&
           cm_crashes == other.cm_crashes && cm_failovers == other.cm_failovers &&
           je_crashes == other.je_crashes && je_failovers == other.je_failovers &&
           metrics_fingerprint == other.metrics_fingerprint &&
           metrics_dump == other.metrics_dump;
  }
};

flowserve::EngineConfig TinyEngine(flowserve::EngineRole role) {
  flowserve::EngineConfig config;
  config.model = model::ModelSpec::Tiny1B();
  config.parallelism = {1, 1, 1};
  config.role = role;
  config.kv_block_capacity_override = 4096;
  return config;
}

// The cluster flavor a stack runs on. kAllGen2Mix spells out the homogeneous
// default through the heterogeneous machine_specs path — it must be
// bit-identical to kHomogeneous. kMixedGen is a genuine Gen1+Gen2 fleet with
// cost-aware placement and dispatch turned on.
enum class ClusterMode { kHomogeneous, kAllGen2Mix, kMixedGen };

// `ctrl_faults` puts the CM and JE on a shared replicated control log and
// mixes cm/je leader crashes into the chaos plan, extending the bit-identical
// replay pin across leader outages and log-replay takeovers.
Outcome RunStack(uint64_t seed, bool enable_faults, bool ctrl_faults = false,
                 ClusterMode mode = ClusterMode::kHomogeneous) {
  sim::Simulator sim;
  obs::MetricsRegistry metrics;
  sim.SetMetrics(&metrics);
  hw::ClusterConfig cluster_config;
  cluster_config.num_machines = 3;
  if (mode == ClusterMode::kAllGen2Mix) {
    cluster_config.machine_specs = hw::ParseNpuMix("gen2:3").value();
  } else if (mode == ClusterMode::kMixedGen) {
    cluster_config.machine_specs = hw::ParseNpuMix("gen1:2,gen2:1").value();
  }
  const bool mixed = mode == ClusterMode::kMixedGen;
  hw::Cluster cluster(&sim, cluster_config);
  distflow::TransferEngine transfer(&sim, &cluster, distflow::DistFlowConfig{});
  ctrl::CtrlConfig ctrl_config;
  if (ctrl_faults) {
    ctrl_config.replicas = 3;
    ctrl_config.quorum = 2;
    ctrl_config.replication_latency = MsToNs(1);
    ctrl_config.lease_duration = MsToNs(300);
  }
  ctrl::ControlLog ctrl_log(&sim, ctrl_config);
  serving::ClusterManager manager(&sim, &cluster, &transfer, {}, {},
                                  ctrl_faults ? &ctrl_log : nullptr);
  manager.ReservePrewarmedPods(6);
  manager.ReservePrewarmedTes(6);
  for (int m = 0; m < cluster.num_machines(); ++m) {
    manager.PreloadModelToDram(m, model::ModelSpec::Tiny1B());
  }
  sim.Run();

  serving::JeConfig je_config;
  je_config.policy = serving::SchedulingPolicy::kLoadOnly;
  je_config.cost_aware = mixed;
  serving::JobExecutor je(&sim, je_config, serving::PdHeatmap::Default(),
                          serving::MakeOraclePredictor());
  if (ctrl_faults) {
    je.AttachControl(&ctrl_log, &manager);  // also registers the TE failure handler
  } else {
    manager.AddFailureHandler([&](serving::TeId id) { je.OnTeFailure(id); });
  }

  // One colocated TE (the autoscaler's group) plus a disaggregated
  // prefill/decode pair sharing the dispatch layer.
  auto engine_for = [mixed](flowserve::EngineRole role) {
    flowserve::EngineConfig config = TinyEngine(role);
    config.npu_spec_from_placement = mixed;  // TE cost models track their silicon
    return config;
  };
  std::vector<distflow::EndpointId> endpoints;
  auto* colocated = manager.CreateReadyTe(engine_for(flowserve::EngineRole::kColocated)).value();
  je.AddColocatedTe(colocated);
  endpoints.push_back(colocated->id());
  auto* prefill = manager.CreateReadyTe(engine_for(flowserve::EngineRole::kPrefillOnly)).value();
  je.AddPrefillTe(prefill);
  endpoints.push_back(prefill->id());
  auto* decode = manager.CreateReadyTe(engine_for(flowserve::EngineRole::kDecodeOnly)).value();
  je.AddDecodeTe(decode);
  endpoints.push_back(decode->id());
  DS_CHECK_OK(transfer.LinkCluster(endpoints, nullptr));
  sim.Run();

  serving::AutoscalerConfig as;
  as.policy = "predictive";
  as.check_interval = MsToNs(500);
  as.scale_up_queue_depth = 4;
  as.scale_down_queue_depth = 1;
  as.min_tes = 1;
  as.max_tes = 3;
  as.te_capacity_rps = 2.0;
  as.down_stable_ticks = 3;
  serving::ScaleRequest request;
  request.engine = engine_for(flowserve::EngineRole::kColocated);
  manager.StartAutoscaler(&je, as, request);

  faults::FaultInjector injector(&sim, &manager, seed);
  if (ctrl_faults) {
    injector.RegisterJobExecutor(&je);
  }
  if (enable_faults) {
    faults::FaultPlanConfig plan;
    plan.count = 5;
    plan.window_start = SToNs(2);
    plan.window_end = SToNs(25);
    if (ctrl_faults) {
      plan.count = 7;
      plan.cm_crash_weight = 1.5;
      plan.je_crash_weight = 1.5;
    }
    injector.ScheduleAll(faults::FaultInjector::GeneratePlan(seed, plan));
  }

  auto trace_config = workload::TraceGenerator::InternalTrace(2.0, 30.0, seed);
  trace_config.prefill = workload::LengthDistribution{512, 0.3, 64, 2048};
  trace_config.decode = workload::LengthDistribution{64, 0.4, 8, 256};
  auto trace =
      workload::TraceGenerator(trace_config).GenerateBursty(0.5, 6.0, 12.0, /*sharpness=*/3.0);
  const TimeNs t0 = sim.Now();

  Outcome out;
  out.requests = static_cast<int64_t>(trace.size());
  std::map<workload::RequestId, int> terminations;
  uint64_t hash = 1469598103934665603ull;
  auto mix = [&hash](uint64_t v) {
    hash ^= v;
    hash *= 1099511628211ull;
  };
  for (auto& spec : trace) {
    spec.arrival += t0;
    sim.ScheduleAt(spec.arrival, [&, spec] {
      je.HandleRequest(spec, {nullptr,
                              [&, id = spec.id](const flowserve::Sequence& seq) {
                                ++out.completed;
                                if (++terminations[id] > 1) ++out.double_terminated;
                                mix(id);
                                mix(static_cast<uint64_t>(seq.first_token_time));
                                mix(static_cast<uint64_t>(seq.finish_time));
                              },
                              [&, id = spec.id](const Status&) {
                                ++out.errored;
                                if (++terminations[id] > 1) ++out.double_terminated;
                                mix(id * 2 + 1);
                              }});
    });
  }
  sim.RunUntil(t0 + SToNs(40));
  manager.StopAutoscaler();
  sim.Run();

  out.timeline_hash = hash;
  out.end_time = sim.Now();
  out.crashes = manager.stats().crashes;
  out.replacements = manager.stats().replacements;
  out.scale_ups = manager.stats().scale_ups;
  out.scale_downs = manager.stats().scale_downs;
  const serving::AutoscalerStats& as_stats = manager.autoscaler()->stats();
  out.drains_completed = as_stats.drains_completed;
  out.drained_seqs = as_stats.drained_seqs;
  out.cm_crashes = manager.stats().cm_crashes;
  out.cm_failovers = manager.stats().cm_failovers;
  out.je_crashes = je.stats().je_crashes;
  out.je_failovers = je.stats().je_failovers;
  out.metrics_fingerprint = metrics.Fingerprint();
  out.metrics_dump = metrics.Dump();
  return out;
}

TEST(DeterminismTest, SameSeedReplaysBitIdentically) {
  for (uint64_t seed : {5ull, 42ull}) {
    Outcome first = RunStack(seed, /*enable_faults=*/true);
    Outcome second = RunStack(seed, /*enable_faults=*/true);
    EXPECT_TRUE(first == second) << "seed " << seed << " diverged;\nfirst:\n"
                                 << first.metrics_dump << "\nsecond:\n" << second.metrics_dump;
    // The run must have been eventful enough to mean something.
    EXPECT_GT(first.completed, 0) << "seed " << seed;
    EXPECT_GT(first.metrics_fingerprint, 0ull) << "seed " << seed;
  }
}

TEST(DeterminismTest, ControlPlaneCrashRunsReplayBitIdenticallyWithZeroLoss) {
  // Three seeds, cm/je crashes in the mix: the fingerprint (timeline hash +
  // every counter + full metrics dump) must replay bit-identically, every
  // request must terminate exactly once, and every leader crash must have
  // failed over by the end of the run.
  bool any_ctrl = false;
  for (uint64_t seed : {3ull, 11ull, 29ull}) {
    Outcome first = RunStack(seed, /*enable_faults=*/true, /*ctrl_faults=*/true);
    Outcome second = RunStack(seed, /*enable_faults=*/true, /*ctrl_faults=*/true);
    EXPECT_TRUE(first == second) << "seed " << seed << " diverged;\nfirst:\n"
                                 << first.metrics_dump << "\nsecond:\n" << second.metrics_dump;
    EXPECT_EQ(first.completed + first.errored, first.requests)
        << "seed " << seed << " lost a request across a leader outage";
    EXPECT_EQ(first.double_terminated, 0) << "seed " << seed;
    EXPECT_EQ(first.cm_failovers, first.cm_crashes) << "seed " << seed;
    EXPECT_EQ(first.je_failovers, first.je_crashes) << "seed " << seed;
    EXPECT_GT(first.completed, 0) << "seed " << seed;
    any_ctrl = any_ctrl || first.cm_crashes + first.je_crashes > 0;
  }
  EXPECT_TRUE(any_ctrl) << "no control-plane crash fired across the three seeds";
}

TEST(DeterminismTest, SameSeedSameMetricsWithoutFaults) {
  Outcome first = RunStack(7, /*enable_faults=*/false);
  Outcome second = RunStack(7, /*enable_faults=*/false);
  EXPECT_TRUE(first == second);
  EXPECT_EQ(first.crashes, 0);
  EXPECT_EQ(first.errored, 0);
}

TEST(DeterminismTest, AllGen2MixBitIdenticalToHomogeneous) {
  // Golden parity: spelling the homogeneous default through the heterogeneous
  // machine_specs path must not move a single event — timeline hash, every
  // counter, and the full metrics dump — across three seeds with chaos on.
  for (uint64_t seed : {5ull, 17ull, 42ull}) {
    Outcome homogeneous =
        RunStack(seed, /*enable_faults=*/true, /*ctrl_faults=*/false, ClusterMode::kHomogeneous);
    Outcome mix =
        RunStack(seed, /*enable_faults=*/true, /*ctrl_faults=*/false, ClusterMode::kAllGen2Mix);
    EXPECT_TRUE(homogeneous == mix)
        << "seed " << seed << ": all-Gen2 machine_specs diverged from homogeneous;\n"
        << "homogeneous:\n" << homogeneous.metrics_dump << "\nmix:\n" << mix.metrics_dump;
    EXPECT_GT(homogeneous.completed, 0) << "seed " << seed;
  }
}

TEST(DeterminismTest, MixedGenerationClusterReplaysBitIdentically) {
  // A genuine Gen1+Gen2 fleet with cost-aware placement and dispatch on, plus
  // the seeded chaos plan (crashes land on whatever generation hosts the
  // victim TE), must still replay bit-identically.
  for (uint64_t seed : {5ull, 11ull, 42ull}) {
    Outcome first =
        RunStack(seed, /*enable_faults=*/true, /*ctrl_faults=*/false, ClusterMode::kMixedGen);
    Outcome second =
        RunStack(seed, /*enable_faults=*/true, /*ctrl_faults=*/false, ClusterMode::kMixedGen);
    EXPECT_TRUE(first == second) << "seed " << seed << " diverged on the mixed cluster;\nfirst:\n"
                                 << first.metrics_dump << "\nsecond:\n" << second.metrics_dump;
    EXPECT_EQ(first.completed + first.errored, first.requests) << "seed " << seed;
    EXPECT_EQ(first.double_terminated, 0) << "seed " << seed;
    EXPECT_GT(first.completed, 0) << "seed " << seed;
  }
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  Outcome a = RunStack(5, /*enable_faults=*/true);
  Outcome b = RunStack(6, /*enable_faults=*/true);
  EXPECT_NE(a.timeline_hash, b.timeline_hash)
      << "different trace+fault seeds produced the same timeline";
}

}  // namespace
}  // namespace deepserve
