// Cross-module integration tests: whole serving pipelines on the simulated
// cluster — platform + engines + RTC + DistFlow together.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "common/time_units.h"
#include "distflow/distflow.h"
#include "hw/cluster.h"
#include "serving/cluster_manager.h"
#include "serving/job_executor.h"
#include "serving/predictor.h"
#include "sim/simulator.h"
#include "workload/metrics.h"
#include "workload/tracegen.h"

namespace deepserve {
namespace {

using serving::SchedulingPolicy;

flowserve::EngineConfig SmallEngine(flowserve::EngineRole role) {
  flowserve::EngineConfig config;
  config.model = model::ModelSpec::Tiny1B();
  config.parallelism = {1, 1, 1};
  config.role = role;
  return config;
}

// A whole-platform fixture: cluster + DistFlow + manager + JE.
class PlatformTest : public ::testing::Test {
 protected:
  PlatformTest() {
    hw::ClusterConfig cluster_config;
    cluster_config.num_machines = 4;
    cluster_ = std::make_unique<hw::Cluster>(&sim_, cluster_config);
    transfer_ = std::make_unique<distflow::TransferEngine>(&sim_, cluster_.get(),
                                                           distflow::DistFlowConfig{});
    manager_ = std::make_unique<serving::ClusterManager>(&sim_, cluster_.get(),
                                                         transfer_.get());
  }

  void MakeJe(SchedulingPolicy policy) {
    serving::JeConfig config;
    config.policy = policy;
    je_ = std::make_unique<serving::JobExecutor>(&sim_, config, serving::PdHeatmap::Default(),
                                                 serving::MakeOraclePredictor());
  }

  void BuildFleet(int colocated, int prefill, int decode) {
    std::vector<distflow::EndpointId> endpoints;
    auto add = [&](flowserve::EngineRole role) {
      auto te = manager_->CreateReadyTe(SmallEngine(role)).value();
      endpoints.push_back(te->id());
      switch (role) {
        case flowserve::EngineRole::kColocated:
          je_->AddColocatedTe(te);
          break;
        case flowserve::EngineRole::kPrefillOnly:
          je_->AddPrefillTe(te);
          break;
        case flowserve::EngineRole::kDecodeOnly:
          je_->AddDecodeTe(te);
          break;
      }
    };
    for (int i = 0; i < colocated; ++i) {
      add(flowserve::EngineRole::kColocated);
    }
    for (int i = 0; i < prefill; ++i) {
      add(flowserve::EngineRole::kPrefillOnly);
    }
    for (int i = 0; i < decode; ++i) {
      add(flowserve::EngineRole::kDecodeOnly);
    }
    ASSERT_TRUE(transfer_->LinkCluster(endpoints, nullptr).ok());
    sim_.Run();
  }

  workload::MetricsCollector Replay(const std::vector<workload::RequestSpec>& trace) {
    workload::MetricsCollector metrics;
    auto first_tokens = std::make_shared<std::map<workload::RequestId, TimeNs>>();
    for (const auto& spec : trace) {
      sim_.ScheduleAt(spec.arrival, [this, &metrics, first_tokens, spec] {
        je_->HandleRequest(
            spec, {[first_tokens, id = spec.id](const flowserve::Sequence& seq) {
              (*first_tokens)[id] = seq.first_token_time;
            }, [&metrics, first_tokens, spec](const flowserve::Sequence& seq) {
              workload::RequestRecord record;
              record.id = spec.id;
              record.arrival = spec.arrival;
              auto it = first_tokens->find(spec.id);
              record.first_token =
                  it != first_tokens->end() ? it->second : seq.first_token_time;
              record.completion = seq.finish_time;
              record.prefill_len = spec.prefill_len();
              record.decode_len = spec.decode_len;
              metrics.Record(record);
            }, nullptr});
      });
    }
    sim_.Run();
    return metrics;
  }

  sim::Simulator sim_;
  std::unique_ptr<hw::Cluster> cluster_;
  std::unique_ptr<distflow::TransferEngine> transfer_;
  std::unique_ptr<serving::ClusterManager> manager_;
  std::unique_ptr<serving::JobExecutor> je_;
};

TEST_F(PlatformTest, MixedFleetServesWholeTrace) {
  MakeJe(SchedulingPolicy::kCombined);
  BuildFleet(2, 1, 1);
  auto config = workload::TraceGenerator::InternalTrace(3.0, 30.0, 1);
  config.prefill = workload::LengthDistribution{512, 0.3, 64, 2048};
  config.decode = workload::LengthDistribution{48, 0.4, 4, 256};
  auto trace = workload::TraceGenerator(config).Generate();
  auto metrics = Replay(trace);
  EXPECT_EQ(metrics.completed(), trace.size());
  EXPECT_GT(metrics.ttft_ms().p50(), 0.0);
  EXPECT_GT(metrics.tpot_ms().p50(), 0.0);
  // Metrics are causally ordered for every record.
  for (const auto& record : metrics.records()) {
    EXPECT_GE(record.first_token, record.arrival);
    EXPECT_GE(record.completion, record.first_token);
  }
}

TEST_F(PlatformTest, JobLedgerConsistentAfterRun) {
  MakeJe(SchedulingPolicy::kCombined);
  BuildFleet(1, 1, 1);
  auto trace = workload::TraceGenerator(
                   workload::TraceGenerator::CodeGenTrace(2.0, 20.0, 3))
                   .Generate();
  Replay(trace);
  EXPECT_EQ(je_->jobs().size(), trace.size());
  for (const auto& job : je_->jobs()) {
    EXPECT_EQ(job.state, serving::JobState::kCompleted);
    EXPECT_GE(job.completed, job.created);
    ASSERT_FALSE(job.tasks.empty());
    ASSERT_LE(job.tasks.size(), 2u);
    for (serving::TaskId task_id : job.tasks) {
      const auto& task = je_->tasks()[task_id - 1];
      EXPECT_EQ(task.state, serving::TaskState::kCompleted);
      EXPECT_EQ(task.job, job.id);
      EXPECT_GE(task.completed, task.dispatched);
    }
  }
}

TEST_F(PlatformTest, DisaggregatedKvTransferIsTimedThroughDistFlow) {
  MakeJe(SchedulingPolicy::kCombined);
  BuildFleet(0, 1, 1);
  auto batch = workload::TraceGenerator::FixedBatch(4, 1024, 32);
  Replay(batch);
  // Every request moved KV prefill -> decode over the fabric.
  EXPECT_GE(transfer_->stats().transfers, 4);
  EXPECT_GT(transfer_->stats().bytes_moved, 0u);
}

TEST_F(PlatformTest, ByRequestTransferSlowerThanByLayer) {
  auto run = [&](flowserve::KvTransferMode mode) {
    sim::Simulator sim;
    hw::ClusterConfig cc;
    cc.num_machines = 2;
    hw::Cluster cluster(&sim, cc);
    distflow::TransferEngine transfer(&sim, &cluster, {});
    serving::ClusterManager manager(&sim, &cluster, &transfer);
    auto engine_config = SmallEngine(flowserve::EngineRole::kPrefillOnly);
    engine_config.kv_transfer_mode = mode;
    auto prefill = manager.CreateReadyTe(engine_config).value();
    engine_config.role = flowserve::EngineRole::kDecodeOnly;
    auto decode = manager.CreateReadyTe(engine_config).value();
    EXPECT_TRUE(transfer.LinkCluster({prefill->id(), decode->id()}, nullptr).ok());
    sim.Run();
    TimeNs done = 0;
    auto batch = workload::TraceGenerator::FixedBatch(1, 2048, 64);
    prefill->SubmitPrefill(
        batch[0], decode,
        {nullptr, [&](const flowserve::Sequence& seq) { done = seq.finish_time; }, nullptr});
    sim.Run();
    return done;
  };
  TimeNs by_req = run(flowserve::KvTransferMode::kByRequest);
  TimeNs by_layer = run(flowserve::KvTransferMode::kByLayer);
  EXPECT_LT(by_layer, by_req);
}

TEST_F(PlatformTest, ScaledUpTeImmediatelyServes) {
  MakeJe(SchedulingPolicy::kLoadOnly);
  BuildFleet(1, 0, 0);
  manager_->ReservePrewarmedPods(2);
  manager_->ReservePrewarmedTes(2);
  serving::ScaleRequest request;
  request.engine = SmallEngine(flowserve::EngineRole::kColocated);
  bool served = false;
  ASSERT_TRUE(manager_
                  ->ScaleUp(request,
                            [&](serving::TaskExecutor* te, const auto&) {
                              ASSERT_NE(te, nullptr);
                              je_->AddColocatedTe(te);
                              auto batch = workload::TraceGenerator::FixedBatch(1, 256, 8);
                              te->SubmitUnified(batch[0],
                                                {nullptr,
                                                 [&](const flowserve::Sequence&) {
                                                   served = true;
                                                 },
                                                 nullptr});
                            })
                  .ok());
  sim_.Run();
  EXPECT_TRUE(served);
}

TEST_F(PlatformTest, DeterministicAcrossRuns) {
  auto run_once = [](uint64_t seed) {
    sim::Simulator sim;
    hw::ClusterConfig cc;
    cc.num_machines = 2;
    hw::Cluster cluster(&sim, cc);
    distflow::TransferEngine transfer(&sim, &cluster, {});
    serving::ClusterManager manager(&sim, &cluster, &transfer);
    serving::JeConfig je_config;
    je_config.policy = SchedulingPolicy::kCombined;
    serving::JobExecutor je(&sim, je_config, serving::PdHeatmap::Default(),
                            serving::MakeNoisyPredictor(0.9, seed));
    auto te = manager.CreateReadyTe(SmallEngine(flowserve::EngineRole::kColocated)).value();
    je.AddColocatedTe(te);
    auto trace = workload::TraceGenerator(
                     workload::TraceGenerator::InternalTrace(2.0, 20.0, seed))
                     .Generate();
    std::vector<TimeNs> completions;
    for (const auto& spec : trace) {
      sim.ScheduleAt(spec.arrival, [&, spec] {
        je.HandleRequest(spec, {nullptr, [&](const flowserve::Sequence& seq) {
          completions.push_back(seq.finish_time);
        }, nullptr});
      });
    }
    sim.Run();
    return completions;
  };
  auto a = run_once(7);
  auto b = run_once(7);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i], b[i]) << "run diverged at completion " << i;
  }
}

TEST_F(PlatformTest, CachePressureWithLocalityStillCompletesEverything) {
  MakeJe(SchedulingPolicy::kCombined);
  // Tiny KV capacity to force constant eviction/preemption under load.
  auto engine_config = SmallEngine(flowserve::EngineRole::kColocated);
  engine_config.kv_block_capacity_override = 256;
  auto te1 = manager_->CreateReadyTe(engine_config).value();
  auto te2 = manager_->CreateReadyTe(engine_config).value();
  je_->AddColocatedTe(te1);
  je_->AddColocatedTe(te2);
  auto config = workload::TraceGenerator::CodeGenTrace(4.0, 20.0, 9);
  config.prefill = workload::LengthDistribution{768, 0.4, 128, 2048};
  config.decode = workload::LengthDistribution{64, 0.5, 8, 256};
  auto trace = workload::TraceGenerator(config).Generate();
  auto metrics = Replay(trace);
  EXPECT_EQ(metrics.completed(), trace.size());
  // After the run all sequence pins are gone: only cached blocks remain.
  EXPECT_TRUE(te1->engine().idle());
  EXPECT_TRUE(te2->engine().idle());
}

TEST_F(PlatformTest, PopulatePathExercisedUnderTierPressure) {
  MakeJe(SchedulingPolicy::kLocalityOnly);
  auto engine_config = SmallEngine(flowserve::EngineRole::kColocated);
  engine_config.kv_block_capacity_override = 512;
  auto te = manager_->CreateReadyTe(engine_config).value();
  je_->AddColocatedTe(te);
  // A repeated long prefix interleaved with cache-thrashing filler: the
  // prefix gets demoted to DRAM and later populated back.
  std::vector<workload::RequestSpec> trace;
  Rng rng(4);
  workload::RequestId id = 1;
  auto make = [&](TokenId base, int64_t len, TimeNs at) {
    workload::RequestSpec spec;
    spec.id = id++;
    spec.arrival = at;
    spec.decode_len = 4;
    for (int64_t i = 0; i < len; ++i) {
      spec.prompt.push_back(base + static_cast<TokenId>(i % 3000));
    }
    trace.push_back(spec);
  };
  make(1000, 2048, 0);  // the hot prefix
  for (int i = 0; i < 12; ++i) {  // filler that overflows the NPU pool
    make(static_cast<TokenId>(40000 + i * 4000), 1536, SToNs(0.5 + 0.4 * i));
  }
  make(1000, 2048, SToNs(8.0));  // prefix returns
  auto metrics = Replay(trace);
  EXPECT_EQ(metrics.completed(), trace.size());
  const auto& stats = te->engine().rtc().stats();
  EXPECT_GT(stats.evicted_blocks + stats.discarded_blocks + stats.swapped_out_blocks, 0);
}

}  // namespace
}  // namespace deepserve
