// Observability-layer tests: Tracer recording/export, MetricsRegistry, and a
// golden end-to-end trace of one request through a FlowServe engine.

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "flowserve/engine.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "sim/simulator.h"
#include "workload/request.h"

namespace deepserve {
namespace {

// ---------------- Tracer unit tests ----------------

TEST(TracerTest, TrackAndLaneRegistration) {
  obs::Tracer tracer;
  int a = tracer.NewTrack("engine/colocated");
  int b = tracer.NewTrack("rtc");
  EXPECT_NE(a, b);
  ASSERT_EQ(tracer.tracks().size(), 2u);
  EXPECT_EQ(tracer.tracks()[static_cast<size_t>(a)], "engine/colocated");
  EXPECT_EQ(tracer.tracks()[static_cast<size_t>(b)], "rtc");
  tracer.SetLaneName(a, 0, "dp0");
  tracer.SetLaneName(a, 1, "dp1");
  // Lane metadata lands in the Chrome export as thread_name records.
  std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("dp0"), std::string::npos);
  EXPECT_NE(json.find("dp1"), std::string::npos);
  EXPECT_NE(json.find("thread_name"), std::string::npos);
}

TEST(TracerTest, RecordsTypedEvents) {
  obs::Tracer tracer;
  int pid = tracer.NewTrack("engine");
  EXPECT_TRUE(tracer.empty());
  tracer.Instant(1000, pid, 0, "seq.submit", {obs::Arg("req", int64_t{7})});
  tracer.Begin(2000, pid, 0, "step", {obs::Arg("prefill_tokens", int64_t{512})});
  tracer.End(3000, pid, 0, "step");
  tracer.AsyncBegin(2500, pid, 42, "kv_send", {obs::Arg("bytes", int64_t{1 << 20})});
  tracer.AsyncEnd(4000, pid, 42, "kv_send");
  tracer.Counter(4500, pid, "kv_usage", 0.75);
  EXPECT_EQ(tracer.size(), 6u);

  auto steps = tracer.EventsNamed("step");
  ASSERT_EQ(steps.size(), 2u);
  EXPECT_EQ(steps[0]->phase, obs::Phase::kBegin);
  EXPECT_EQ(steps[1]->phase, obs::Phase::kEnd);
  EXPECT_EQ(steps[0]->ts, 2000);
  ASSERT_EQ(steps[0]->args.size(), 1u);
  EXPECT_EQ(steps[0]->args[0].key, "prefill_tokens");
  EXPECT_EQ(steps[0]->args[0].value, "512");
  EXPECT_TRUE(steps[0]->args[0].numeric);

  auto sends = tracer.EventsNamed("kv_send");
  ASSERT_EQ(sends.size(), 2u);
  EXPECT_EQ(sends[0]->async_id, 42u);
  EXPECT_EQ(sends[1]->async_id, 42u);
  EXPECT_EQ(sends[0]->phase, obs::Phase::kAsyncBegin);
  EXPECT_EQ(sends[1]->phase, obs::Phase::kAsyncEnd);
}

TEST(TracerTest, ChromeJsonIsSortedMicroseconds) {
  obs::Tracer tracer;
  int pid = tracer.NewTrack("t");
  // Record out of order across two lanes; export must sort by timestamp.
  tracer.Instant(5'000'000, pid, 1, "late");
  tracer.Instant(2'000'000, pid, 0, "early");
  std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  size_t early = json.find("\"early\"");
  size_t late = json.find("\"late\"");
  ASSERT_NE(early, std::string::npos);
  ASSERT_NE(late, std::string::npos);
  EXPECT_LT(early, late);
  // ts is microseconds (2'000'000 ns -> 2000 us).
  EXPECT_NE(json.find("\"ts\":2000"), std::string::npos);
}

TEST(TracerTest, JsonlOneLinePerEvent) {
  obs::Tracer tracer;
  int pid = tracer.NewTrack("t");
  tracer.Instant(1, pid, 0, "a");
  tracer.Instant(2, pid, 0, "b", {obs::Arg("note", "with \"quotes\" and \\slash")});
  std::string jsonl = tracer.ToJsonl();
  size_t lines = 0;
  for (char c : jsonl) {
    lines += c == '\n';
  }
  EXPECT_EQ(lines, 2u);
  // String args are escaped JSON.
  EXPECT_NE(jsonl.find("with \\\"quotes\\\" and \\\\slash"), std::string::npos);
}

// ---------------- MetricsRegistry ----------------

TEST(MetricsRegistryTest, GetOrCreateIsStable) {
  obs::MetricsRegistry registry;
  obs::Counter* c1 = registry.counter("engine.steps");
  obs::Counter* c2 = registry.counter("engine.steps");
  EXPECT_EQ(c1, c2);
  c1->Inc();
  c2->Inc(4);
  EXPECT_EQ(c1->value(), 5);

  obs::Gauge* g = registry.gauge("sim.queue_depth_max");
  g->SetMax(3.0);
  g->SetMax(1.0);
  EXPECT_EQ(g->value(), 3.0);

  OnlineStats* s1 = registry.stats("engine.step_ms");
  OnlineStats* s2 = registry.stats("engine.step_ms");
  EXPECT_EQ(s1, s2);
  s1->Add(2.0);
  s1->Add(4.0);
  EXPECT_EQ(registry.size(), 3u);

  std::string dump = registry.Dump();
  EXPECT_NE(dump.find("counter engine.steps"), std::string::npos);
  EXPECT_NE(dump.find("gauge   sim.queue_depth_max"), std::string::npos);
  EXPECT_NE(dump.find("stats   engine.step_ms"), std::string::npos);
  EXPECT_NE(dump.find("count=2"), std::string::npos);
}

// ---------------- Golden engine trace ----------------

// One deterministic request through an engine records the canonical event
// sequence in order, with monotonically non-decreasing timestamps.
TEST(TraceGoldenTest, SingleRequestEventOrder) {
  sim::Simulator sim;
  obs::Tracer tracer;
  obs::MetricsRegistry metrics;
  sim.SetTracer(&tracer);
  sim.SetMetrics(&metrics);

  flowserve::EngineConfig config;
  config.model = model::ModelSpec::Tiny1B();
  config.parallelism = {1, 1, 1};
  config.prefill_chunk_tokens = 512;
  config.kv_block_capacity_override = 4096;
  flowserve::Engine engine(&sim, config);

  workload::RequestSpec spec;
  spec.id = 9;
  spec.decode_len = 4;
  for (int i = 0; i < 1024; ++i) {
    spec.prompt.push_back(100 + i);
  }
  bool done = false;
  engine.Submit(spec, nullptr, [&](const flowserve::Sequence&) { done = true; });
  sim.Run();
  ASSERT_TRUE(done);

  // Lifecycle markers, in order: submit -> enqueue -> first step begin ->
  // ... -> finish. 1024 prompt tokens at chunk 512 = 2 prefill steps, plus
  // 3 decode steps (prefill emits token 1 of 4).
  auto submit = tracer.EventsNamed("seq.submit");
  auto enqueue = tracer.EventsNamed("seq.enqueue");
  auto steps = tracer.EventsNamed("step");
  auto finish = tracer.EventsNamed("seq.finish");
  ASSERT_EQ(submit.size(), 1u);
  ASSERT_EQ(enqueue.size(), 1u);
  ASSERT_EQ(finish.size(), 1u);
  EXPECT_EQ(steps.size(), 10u);  // 5 steps x (begin + end)
  EXPECT_LE(submit[0]->ts, enqueue[0]->ts);
  EXPECT_LE(enqueue[0]->ts, steps[0]->ts);
  EXPECT_LE(steps.back()->ts, finish[0]->ts);

  // The whole stream is recorded in non-decreasing sim-time order.
  const auto& events = tracer.events();
  for (size_t i = 1; i < events.size(); ++i) {
    EXPECT_LE(events[i - 1].ts, events[i].ts) << "event " << i << " went backwards";
  }

  // Step slices alternate B/E on the single DP lane and carry the StepShape.
  for (size_t i = 0; i < steps.size(); ++i) {
    EXPECT_EQ(steps[i]->phase, i % 2 == 0 ? obs::Phase::kBegin : obs::Phase::kEnd);
    EXPECT_EQ(steps[i]->tid, 0);
  }
  bool saw_prefill_tokens = false;
  for (const auto& arg : steps[0]->args) {
    saw_prefill_tokens |= arg.key == "prefill_tokens" && arg.value == "512";
  }
  EXPECT_TRUE(saw_prefill_tokens);

  // Registry picked up the simulator and engine counters.
  EXPECT_EQ(metrics.counter("engine.steps")->value(), 5);
  EXPECT_EQ(metrics.counter("engine.prefill_tokens")->value(), 1024);
  EXPECT_EQ(metrics.counter("engine.decode_tokens")->value(), 3);
  EXPECT_GT(metrics.counter("sim.events_fired")->value(), 0);

  // Exports are well-formed and include every event.
  std::string json = tracer.ToChromeJson();
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"seq.finish\""), std::string::npos);
}

// A second simulator run with no tracer attached takes the identical
// schedule: tracing must be strictly passive.
TEST(TraceGoldenTest, TracerDoesNotPerturbTiming) {
  auto run = [](bool traced) {
    sim::Simulator sim;
    obs::Tracer tracer;
    if (traced) {
      sim.SetTracer(&tracer);
    }
    flowserve::EngineConfig config;
    config.model = model::ModelSpec::Tiny1B();
    config.parallelism = {1, 1, 1};
    config.kv_block_capacity_override = 4096;
    flowserve::Engine engine(&sim, config);
    workload::RequestSpec spec;
    spec.id = 1;
    spec.decode_len = 16;
    for (int i = 0; i < 700; ++i) {
      spec.prompt.push_back(3000 + i);
    }
    TimeNs finish = 0;
    engine.Submit(spec, nullptr,
                  [&](const flowserve::Sequence& seq) { finish = seq.finish_time; });
    sim.Run();
    return finish;
  };
  EXPECT_EQ(run(true), run(false));
}

}  // namespace
}  // namespace deepserve
