// Frontend routing, multi-tenant priority classes, and SLA-aware adaptive
// chunking tests.

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/time_units.h"
#include "distflow/distflow.h"
#include "flowserve/engine.h"
#include "hw/cluster.h"
#include "serving/cluster_manager.h"
#include "serving/frontend.h"
#include "serving/job_executor.h"
#include "serving/predictor.h"
#include "sim/simulator.h"
#include "workload/metrics.h"
#include "workload/tracegen.h"

namespace deepserve {
namespace {

flowserve::EngineConfig SmallEngine(flowserve::EngineRole role,
                                    const model::ModelSpec& model = model::ModelSpec::Tiny1B()) {
  flowserve::EngineConfig config;
  config.model = model;
  config.parallelism = {1, 1, 1};
  config.role = role;
  config.kv_block_capacity_override = 4096;
  return config;
}

workload::RequestSpec MakeRequest(workload::RequestId id, int64_t prefill, int64_t decode,
                                  TokenId base = 900) {
  workload::RequestSpec spec;
  spec.id = id;
  spec.decode_len = decode;
  for (int64_t i = 0; i < prefill; ++i) {
    spec.prompt.push_back(base + static_cast<TokenId>(i % 6000));
  }
  return spec;
}

// ---------------- Frontend ----------------

serving::ChatRequest Chat(const std::string& model, workload::RequestSpec spec) {
  serving::ChatRequest request;
  request.model = model;
  request.spec = std::move(spec);
  return request;
}

class FrontendTest : public ::testing::Test {
 protected:
  FrontendTest() {
    hw::ClusterConfig cc;
    cc.num_machines = 2;
    cluster_ = std::make_unique<hw::Cluster>(&sim_, cc);
    transfer_ = std::make_unique<distflow::TransferEngine>(&sim_, cluster_.get(),
                                                           distflow::DistFlowConfig{});
    manager_ = std::make_unique<serving::ClusterManager>(&sim_, cluster_.get(),
                                                         transfer_.get());
  }

  std::unique_ptr<serving::JobExecutor> MakeJeWithTe() {
    serving::JeConfig config;
    config.policy = serving::SchedulingPolicy::kLoadOnly;
    auto je = std::make_unique<serving::JobExecutor>(
        &sim_, config, serving::PdHeatmap::Default(), serving::MakeOraclePredictor());
    auto te = manager_->CreateReadyTe(SmallEngine(flowserve::EngineRole::kColocated)).value();
    je->AddColocatedTe(te);
    last_te_ = te;
    return je;
  }

  sim::Simulator sim_;
  std::unique_ptr<hw::Cluster> cluster_;
  std::unique_ptr<distflow::TransferEngine> transfer_;
  std::unique_ptr<serving::ClusterManager> manager_;
  serving::TaskExecutor* last_te_ = nullptr;
};

TEST_F(FrontendTest, RoutesByModelName) {
  serving::Frontend frontend;
  auto je = MakeJeWithTe();
  frontend.RegisterServingJe("tiny-1b", je.get());
  bool done = false;
  EXPECT_TRUE(frontend
                  .ChatCompletion(Chat("tiny-1b", MakeRequest(1, 128, 8)),
                                  {nullptr, [&](const flowserve::Sequence&) { done = true; },
                                   nullptr})
                  .ok());
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(frontend.stats().chat_dispatched, 1);
}

TEST_F(FrontendTest, UnknownModelRejectedThroughStatusExactlyOnce) {
  // Exactly-once reporting: a pre-dispatch rejection is the returned Status
  // and nothing else — the handler must NOT also fire (callers that count
  // both would double-count the request).
  serving::Frontend frontend;
  int error_calls = 0;
  Status s = frontend.ChatCompletion(Chat("gpt-17", MakeRequest(1, 64, 4)),
                                     {nullptr, nullptr, [&](const Status&) { ++error_calls; }});
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(error_calls, 0);  // the Status is the one and only report
  EXPECT_EQ(frontend.stats().rejected(serving::RejectReason::kUnknownModel), 1);
  EXPECT_EQ(frontend.stats().rejected_total(), 1);
  EXPECT_EQ(frontend.stats().errors, 0);  // rejected, not errored-after-dispatch
}

TEST_F(FrontendTest, DeadlineAlreadyMissedRejected) {
  serving::Frontend frontend(&sim_);
  auto je = MakeJeWithTe();
  frontend.RegisterServingJe("tiny-1b", je.get());
  sim_.ScheduleAt(MsToNs(100), [&] {
    auto request = Chat("tiny-1b", MakeRequest(1, 64, 4));
    request.deadline = MsToNs(50);  // already in the past
    int error_calls = 0;
    EXPECT_EQ(frontend.ChatCompletion(std::move(request),
                                      {nullptr, nullptr, [&](const Status&) { ++error_calls; }})
                  .code(),
              StatusCode::kDeadlineExceeded);
    EXPECT_EQ(error_calls, 0);  // reported via Status only
  });
  sim_.Run();
  EXPECT_EQ(frontend.stats().rejected(serving::RejectReason::kDeadline), 1);
  EXPECT_EQ(frontend.stats().chat_dispatched, 0);
}

TEST_F(FrontendTest, PriorityOverrideReachesEngine) {
  serving::Frontend frontend;
  auto je = MakeJeWithTe();
  frontend.RegisterServingJe("tiny-1b", je.get());
  auto request = Chat("tiny-1b", MakeRequest(1, 64, 4));
  request.spec.priority = 2;
  request.priority = 0;  // envelope overrides the spec
  int seen_priority = -1;
  ASSERT_TRUE(frontend
                  .ChatCompletion(std::move(request),
                                  {nullptr,
                                   [&](const flowserve::Sequence& seq) {
                                     seen_priority = seq.priority;
                                   },
                                   nullptr})
                  .ok());
  sim_.Run();
  EXPECT_EQ(seen_priority, 0);
}

TEST_F(FrontendTest, RoundRobinAcrossJeReplicas) {
  serving::Frontend frontend;
  auto je1 = MakeJeWithTe();
  auto je2 = MakeJeWithTe();
  frontend.RegisterServingJe("tiny-1b", je1.get());
  frontend.RegisterServingJe("tiny-1b", je2.get());
  EXPECT_EQ(frontend.je_count("tiny-1b"), 2u);
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(frontend
                    .ChatCompletion(Chat("tiny-1b", MakeRequest(
                                                        static_cast<workload::RequestId>(i + 1),
                                                        64, 4)),
                                    {nullptr, nullptr, nullptr})
                    .ok());
  }
  sim_.Run();
  EXPECT_EQ(je1->stats().requests, 3);
  EXPECT_EQ(je2->stats().requests, 3);
}

TEST_F(FrontendTest, SkipsJeWithoutCapacity) {
  serving::Frontend frontend;
  serving::JeConfig config;
  auto empty_je = std::make_unique<serving::JobExecutor>(
      &sim_, config, serving::PdHeatmap::Default(), serving::MakeOraclePredictor());
  auto good_je = MakeJeWithTe();
  frontend.RegisterServingJe("tiny-1b", empty_je.get());
  frontend.RegisterServingJe("tiny-1b", good_je.get());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(frontend
                    .ChatCompletion(Chat("tiny-1b", MakeRequest(
                                                        static_cast<workload::RequestId>(i + 1),
                                                        64, 4)),
                                    {nullptr, nullptr, nullptr})
                    .ok());
  }
  EXPECT_EQ(empty_je->stats().requests, 0);
  EXPECT_EQ(good_je->stats().requests, 4);
  sim_.Run();
}

TEST_F(FrontendTest, AllReplicasDownMeansUnavailable) {
  serving::Frontend frontend;
  serving::JeConfig config;
  auto empty_je = std::make_unique<serving::JobExecutor>(
      &sim_, config, serving::PdHeatmap::Default(), serving::MakeOraclePredictor());
  frontend.RegisterServingJe("tiny-1b", empty_je.get());
  EXPECT_EQ(frontend
                .ChatCompletion(Chat("tiny-1b", MakeRequest(1, 64, 4)),
                                {nullptr, nullptr, nullptr})
                .code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(frontend.stats().rejected(serving::RejectReason::kNoCapacity), 1);
}

TEST_F(FrontendTest, CapacityConsultsTeStateNotGroupMembership) {
  // A JE whose only TE has failed still *has* the TE in its group; the old
  // group-membership check would have routed to it. HasReadyCapacity must
  // consult TeState instead.
  serving::Frontend frontend;
  auto je = MakeJeWithTe();
  frontend.RegisterServingJe("tiny-1b", je.get());
  ASSERT_TRUE(manager_->KillTe(last_te_->id()).ok());
  EXPECT_EQ(frontend
                .ChatCompletion(Chat("tiny-1b", MakeRequest(1, 64, 4)),
                                {nullptr, nullptr, nullptr})
                .code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(je->stats().requests, 0);
}

TEST_F(FrontendTest, RoundRobinSkipsFailedReplicaAndResumesOnReplacement) {
  serving::Frontend frontend;
  auto je1 = MakeJeWithTe();
  auto* te1 = last_te_;
  auto je2 = MakeJeWithTe();
  frontend.RegisterServingJe("tiny-1b", je1.get());
  frontend.RegisterServingJe("tiny-1b", je2.get());
  manager_->AddFailureHandler([&](serving::TeId id) {
    je1->OnTeFailure(id);
    je2->OnTeFailure(id);
  });

  // je1's TE fails mid-stream: subsequent requests all land on je2.
  ASSERT_TRUE(manager_->KillTe(te1->id()).ok());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(frontend
                    .ChatCompletion(Chat("tiny-1b", MakeRequest(
                                                        static_cast<workload::RequestId>(i + 1),
                                                        64, 4)),
                                    {nullptr, nullptr, nullptr})
                    .ok());
  }
  EXPECT_EQ(je1->stats().requests, 0);
  EXPECT_EQ(je2->stats().requests, 4);
  sim_.Run();

  // A replacement replica registered later re-enters the rotation.
  auto je3 = MakeJeWithTe();
  frontend.RegisterServingJe("tiny-1b", je3.get());
  for (int i = 0; i < 4; ++i) {
    ASSERT_TRUE(frontend
                    .ChatCompletion(Chat("tiny-1b", MakeRequest(
                                                        static_cast<workload::RequestId>(i + 10),
                                                        64, 4)),
                                    {nullptr, nullptr, nullptr})
                    .ok());
  }
  sim_.Run();
  EXPECT_EQ(je3->stats().requests, 2);
  EXPECT_EQ(je2->stats().requests, 6);
}

TEST_F(FrontendTest, PostDispatchLossDeliversOnError) {
  // The request is accepted (Status OK), then its TE dies with no surviving
  // capacity: the failure must surface through on_error, exactly once.
  serving::Frontend frontend;
  auto je = MakeJeWithTe();
  auto* te = last_te_;
  frontend.RegisterServingJe("tiny-1b", je.get());
  manager_->AddFailureHandler([&](serving::TeId id) { je->OnTeFailure(id); });

  int completions = 0;
  int errors = 0;
  Status seen = Status::Ok();
  ASSERT_TRUE(frontend
                  .ChatCompletion(Chat("tiny-1b", MakeRequest(1, 2048, 2048)),
                                  {nullptr,
                                   [&](const flowserve::Sequence&) { ++completions; },
                                   [&](const Status& e) {
                                     ++errors;
                                     seen = e;
                                   }})
                  .ok());
  sim_.RunUntil(MsToNs(100));  // request in flight
  ASSERT_TRUE(manager_->KillTe(te->id()).ok());
  sim_.Run();
  EXPECT_EQ(completions, 0);
  EXPECT_EQ(errors, 1);
  EXPECT_FALSE(seen.ok());
  EXPECT_EQ(frontend.stats().errors, 1);
  EXPECT_EQ(frontend.stats().rejected_total(), 0);
  EXPECT_EQ(frontend.stats().chat_dispatched, 1);
}

TEST_F(FrontendTest, FineTuneRouting) {
  serving::Frontend frontend;
  EXPECT_EQ(frontend.FineTune(serving::FineTuneRequest{}, nullptr).code(),
            StatusCode::kUnavailable);
  serving::FineTuneJobExecutor ft(&sim_, manager_.get());
  frontend.RegisterFineTuneExecutor(&ft);
  serving::FineTuneRequest request;
  request.base_model = model::ModelSpec::Tiny1B();
  request.parallelism = {8, 1, 1};
  request.dataset_tokens = 100000;
  bool done = false;
  EXPECT_TRUE(frontend.FineTune(request, [&](const serving::FineTuneResult& r) {
    done = r.succeeded;
  }).ok());
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(frontend.stats().finetune_dispatched, 1);
}

// ---------------- Priority classes ----------------

TEST(PriorityTest, InteractiveJumpsTheQueue) {
  sim::Simulator sim;
  auto config = SmallEngine(flowserve::EngineRole::kColocated);
  config.max_batch_seqs = 2;  // force queueing
  flowserve::Engine engine(&sim, config);
  // A pile of batch-class work...
  for (int i = 0; i < 12; ++i) {
    auto spec = MakeRequest(static_cast<workload::RequestId>(i + 1), 1024, 256,
                            static_cast<TokenId>(100 + 501 * i));
    spec.priority = 2;
    engine.Submit(spec, nullptr, nullptr);
  }
  // ...then one interactive request arrives late.
  TimeNs vip_first = 0;
  sim.ScheduleAt(MsToNs(50), [&] {
    auto vip = MakeRequest(100, 1024, 8, 30000);
    vip.priority = 0;
    engine.Submit(vip, [&](const flowserve::Sequence& seq) {
      vip_first = seq.first_token_time;
    }, nullptr);
  });
  // An equally-late batch request for comparison.
  TimeNs batch_first = 0;
  sim.ScheduleAt(MsToNs(50), [&] {
    auto late = MakeRequest(101, 1024, 8, 50000);
    late.priority = 2;
    engine.Submit(late, [&](const flowserve::Sequence& seq) {
      batch_first = seq.first_token_time;
    }, nullptr);
  });
  sim.Run();
  EXPECT_GT(vip_first, 0);
  EXPECT_GT(batch_first, 0);
  EXPECT_LT(vip_first, batch_first);
}

TEST(PriorityTest, PreemptionVictimizesBatchClassFirst) {
  sim::Simulator sim;
  auto config = SmallEngine(flowserve::EngineRole::kColocated);
  config.kv_block_capacity_override = 96;
  flowserve::Engine engine(&sim, config);
  // One interactive and one batch decode fill the KV space; growth pressure
  // must preempt the batch one.
  auto vip = MakeRequest(1, 512, 512, 1000);
  vip.priority = 0;
  TimeNs vip_done = 0;
  engine.Submit(vip, nullptr,
                [&](const flowserve::Sequence& seq) { vip_done = seq.finish_time; });
  auto batch = MakeRequest(2, 512, 512, 40000);
  batch.priority = 2;
  TimeNs batch_done = 0;
  engine.Submit(batch, nullptr,
                [&](const flowserve::Sequence& seq) { batch_done = seq.finish_time; });
  sim.Run();
  EXPECT_GT(engine.stats().preemptions, 0);
  EXPECT_GT(vip_done, 0);
  EXPECT_GT(batch_done, 0);
  EXPECT_LT(vip_done, batch_done);  // the interactive request never yielded
}

// ---------------- Adaptive chunking ----------------

TEST(AdaptiveChunkTest, ControllerBoundsWorstTokenStallUnderMixedLoad) {
  auto run = [&](bool adaptive) {
    sim::Simulator sim;
    flowserve::EngineConfig config;
    config.model = model::ModelSpec::Yi34B();
    config.npu_spec = hw::NpuSpec::Gen1();
    config.parallelism = {4, 1, 1};
    config.enable_prefix_caching = false;
    config.prefill_chunk_tokens = 2048;
    config.adaptive_chunking = adaptive;
    config.chunk_target_tpot_ms = 45.0;
    flowserve::Engine engine(&sim, config);
    // Long-lived decodes...
    workload::MetricsCollector metrics;
    Rng rng(2);
    for (int i = 0; i < 8; ++i) {
      workload::RequestSpec spec;
      spec.id = static_cast<workload::RequestId>(i + 1);
      spec.decode_len = 512;
      for (int j = 0; j < 256; ++j) {
        spec.prompt.push_back(static_cast<TokenId>(rng.UniformInt(256, 50000)));
      }
      engine.Submit(spec, nullptr, [&metrics, spec](const flowserve::Sequence& seq) {
        workload::RequestRecord record;
        record.id = spec.id;
        record.arrival = 0;
        record.first_token = seq.first_token_time;
        record.completion = seq.finish_time;
        record.prefill_len = spec.prefill_len();
        record.decode_len = spec.decode_len;
        metrics.Record(record);
      });
    }
    // ...joined by a stream of big prefills that would starve them.
    for (int i = 0; i < 10; ++i) {
      sim.ScheduleAt(SToNs(0.5 + 0.8 * i), [&engine, i] {
        workload::RequestSpec spec;
        spec.id = static_cast<workload::RequestId>(100 + i);
        spec.decode_len = 4;
        for (int j = 0; j < 6144; ++j) {
          spec.prompt.push_back(static_cast<TokenId>(2000 + 77 * i + j % 5000));
        }
        engine.Submit(spec, nullptr, nullptr);
      });
    }
    sim.Run();
    return NsToMs(engine.stats().max_decode_step);
  };
  // Chunking conserves total prefill work, so per-request mean TPOT barely
  // moves; what the controller bounds is the WORST inter-token stall.
  double fixed_worst = run(false);
  double adaptive_worst = run(true);
  EXPECT_LT(adaptive_worst, 0.5 * fixed_worst);
}

TEST(AdaptiveChunkTest, NoRegressionWithoutDecodeLoad) {
  // Pure prefill workloads should see full-size chunks (no false shrinking).
  sim::Simulator sim;
  auto config = SmallEngine(flowserve::EngineRole::kColocated);
  config.adaptive_chunking = true;
  config.chunk_target_tpot_ms = 10.0;
  flowserve::Engine engine(&sim, config);
  bool done = false;
  engine.Submit(MakeRequest(1, 4096, 2), nullptr,
                [&](const flowserve::Sequence&) { done = true; });
  sim.Run();
  EXPECT_TRUE(done);
  // 4096 tokens at 512/chunk = 8 prefill steps (plus the decode step): the
  // controller never engaged because no step mixed decode with prefill.
  EXPECT_LE(engine.stats().steps, 10);
}

}  // namespace
}  // namespace deepserve
