#include <gtest/gtest.h>

#include "common/time_units.h"
#include "common/types.h"
#include "hw/cluster.h"
#include "hw/hccl.h"
#include "hw/link.h"
#include "hw/npu.h"
#include "sim/simulator.h"

namespace deepserve::hw {
namespace {

TEST(NpuTest, HbmAccounting) {
  Npu npu(0, 0, NpuSpec::Gen2());
  EXPECT_EQ(npu.hbm_used(), 0u);
  ASSERT_TRUE(npu.AllocateHbm(GiB(10)).ok());
  EXPECT_EQ(npu.hbm_used(), GiB(10));
  EXPECT_EQ(npu.hbm_free(), npu.hbm_capacity() - GiB(10));
  npu.FreeHbm(GiB(10));
  EXPECT_EQ(npu.hbm_used(), 0u);
}

TEST(NpuTest, AllocationFailsWhenExhausted) {
  Npu npu(0, 0, NpuSpec::Gen1());  // 32 GiB
  ASSERT_TRUE(npu.AllocateHbm(GiB(30)).ok());
  Status s = npu.AllocateHbm(GiB(4));
  EXPECT_EQ(s.code(), StatusCode::kResourceExhausted);
  // Failed allocation must not leak accounting.
  EXPECT_EQ(npu.hbm_used(), GiB(30));
}

TEST(NpuSpecTest, GenerationsMatchPaperRanges) {
  NpuSpec gen1 = NpuSpec::Gen1();
  NpuSpec gen2 = NpuSpec::Gen2();
  // "between 280 and 400 TFlops ... 32 to 64 GB" (§2).
  EXPECT_GE(gen1.tflops_fp16, 280.0);
  EXPECT_LE(gen2.tflops_fp16, 400.0);
  EXPECT_EQ(gen1.hbm_capacity, GiB(32));
  EXPECT_EQ(gen2.hbm_capacity, GiB(64));
}

class SharedLinkTest : public ::testing::Test {
 protected:
  sim::Simulator sim_;
};

TEST_F(SharedLinkTest, SingleFlowTakesBytesOverBandwidthPlusLatency) {
  SharedLink link(&sim_, "l", LinkType::kPcie, 1e9 /* 1 GB/s */, UsToNs(100));
  TimeNs done = -1;
  link.StartFlow(500'000'000, [&] { done = sim_.Now(); });
  sim_.Run();
  // 0.5 GB at 1 GB/s = 0.5 s (+100 us latency).
  EXPECT_NEAR(NsToS(done), 0.5 + 100e-6, 1e-3);
}

TEST_F(SharedLinkTest, IsolatedDurationMatchesSingleFlow) {
  SharedLink link(&sim_, "l", LinkType::kHccs, 2e9, UsToNs(10));
  TimeNs done = -1;
  link.StartFlow(1'000'000'000, [&] { done = sim_.Now(); });
  sim_.Run();
  EXPECT_NEAR(static_cast<double>(done), static_cast<double>(link.IsolatedDuration(1'000'000'000)),
              static_cast<double>(MsToNs(1)));
}

TEST_F(SharedLinkTest, TwoConcurrentFlowsShareBandwidth) {
  SharedLink link(&sim_, "l", LinkType::kPcie, 1e9, 0);
  TimeNs done_a = -1;
  TimeNs done_b = -1;
  link.StartFlow(1'000'000'000, [&] { done_a = sim_.Now(); });
  link.StartFlow(1'000'000'000, [&] { done_b = sim_.Now(); });
  sim_.Run();
  // Both 1 GB flows at a shared 1 GB/s finish together at ~2 s.
  EXPECT_NEAR(NsToS(done_a), 2.0, 0.01);
  EXPECT_NEAR(NsToS(done_b), 2.0, 0.01);
}

TEST_F(SharedLinkTest, LateFlowDelaysEarlyFlowProportionally) {
  SharedLink link(&sim_, "l", LinkType::kPcie, 1e9, 0);
  TimeNs done_a = -1;
  TimeNs done_b = -1;
  link.StartFlow(1'000'000'000, [&] { done_a = sim_.Now(); });
  // Second flow starts at t=0.5s when A is half done.
  sim_.ScheduleAt(SToNs(0.5), [&] {
    link.StartFlow(1'000'000'000, [&] { done_b = sim_.Now(); });
  });
  sim_.Run();
  // A: 0.5 GB alone (0.5 s) + 0.5 GB shared (1.0 s) => 1.5 s total.
  EXPECT_NEAR(NsToS(done_a), 1.5, 0.01);
  // B: shares until 1.5 s (transfers 0.5), then alone for 0.5 => 2.0 s.
  EXPECT_NEAR(NsToS(done_b), 2.0, 0.01);
}

TEST_F(SharedLinkTest, BandwidthScaleSlowsTransfers) {
  SharedLink link(&sim_, "l", LinkType::kHccs, 1e9, 0);
  link.SetBandwidthScale(0.5);
  TimeNs done = -1;
  link.StartFlow(1'000'000'000, [&] { done = sim_.Now(); });
  sim_.Run();
  EXPECT_NEAR(NsToS(done), 2.0, 0.01);
}

TEST_F(SharedLinkTest, ZeroByteFlowCompletesAfterLatency) {
  SharedLink link(&sim_, "l", LinkType::kRoce, 1e9, UsToNs(25));
  TimeNs done = -1;
  link.StartFlow(0, [&] { done = sim_.Now(); });
  sim_.Run();
  EXPECT_EQ(done, UsToNs(25));
}

TEST_F(SharedLinkTest, TracksTotalBytes) {
  SharedLink link(&sim_, "l", LinkType::kPcie, 1e9, 0);
  link.StartFlow(100, [] {});
  link.StartFlow(200, [] {});
  sim_.Run();
  EXPECT_EQ(link.total_bytes_transferred(), 300u);
}

TEST_F(SharedLinkTest, ManyFlowsAllComplete) {
  SharedLink link(&sim_, "l", LinkType::kPcie, 1e9, 0);
  int completed = 0;
  for (int i = 0; i < 64; ++i) {
    link.StartFlow(1'000'000, [&] { ++completed; });
  }
  sim_.Run();
  EXPECT_EQ(completed, 64);
  EXPECT_EQ(link.active_flows(), 0u);
}

TEST(PageCacheTest, InsertAndLookup) {
  PageCache cache(GiB(10));
  EXPECT_TRUE(cache.Insert("llama3-8b", GiB(4), 0));
  EXPECT_TRUE(cache.Contains("llama3-8b"));
  EXPECT_EQ(cache.used(), GiB(4));
}

TEST(PageCacheTest, RejectsObjectLargerThanCapacity) {
  PageCache cache(GiB(1));
  EXPECT_FALSE(cache.Insert("llama3-70b", GiB(140), 0));
  EXPECT_EQ(cache.used(), 0u);
}

TEST(PageCacheTest, EvictsLruToFit) {
  PageCache cache(GiB(10));
  EXPECT_TRUE(cache.Insert("a", GiB(4), 0));
  EXPECT_TRUE(cache.Insert("b", GiB(4), 1));
  cache.Touch("a", 2);  // a becomes most recent
  EXPECT_TRUE(cache.Insert("c", GiB(4), 3));
  EXPECT_TRUE(cache.Contains("a"));
  EXPECT_FALSE(cache.Contains("b"));  // LRU evicted
  EXPECT_TRUE(cache.Contains("c"));
}

TEST(PageCacheTest, EraseReleasesSpace) {
  PageCache cache(GiB(8));
  cache.Insert("a", GiB(8), 0);
  cache.Erase("a");
  EXPECT_EQ(cache.used(), 0u);
  EXPECT_TRUE(cache.Insert("b", GiB(8), 1));
}

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : cluster_(&sim_, MakeConfig()) {}
  static ClusterConfig MakeConfig() {
    ClusterConfig config;
    config.num_machines = 8;
    config.machines_per_scaleup_domain = 4;
    return config;
  }
  sim::Simulator sim_;
  Cluster cluster_;
};

TEST_F(ClusterTest, GlobalNpuIdsMapToMachines) {
  EXPECT_EQ(cluster_.total_npus(), 64);
  EXPECT_EQ(cluster_.machine_of(0), 0);
  EXPECT_EQ(cluster_.machine_of(7), 0);
  EXPECT_EQ(cluster_.machine_of(8), 1);
  EXPECT_EQ(cluster_.machine_of(63), 7);
  EXPECT_EQ(cluster_.npu(13)->id(), 13);
  EXPECT_EQ(cluster_.npu(13)->machine(), 1);
}

TEST_F(ClusterTest, ScaleUpDomainMembership) {
  // Machines 0-3 are one domain; 4-7 another.
  EXPECT_TRUE(cluster_.SameScaleUpDomain(0, 8 * 3));
  EXPECT_FALSE(cluster_.SameScaleUpDomain(0, 8 * 4));
}

TEST_F(ClusterTest, InterNpuLinkChoosesFabric) {
  EXPECT_EQ(cluster_.InterNpuLink(0, 8)->type(), LinkType::kHccs);
  EXPECT_EQ(cluster_.InterNpuLink(0, 8 * 5)->type(), LinkType::kRoce);
}

TEST_F(ClusterTest, PcieLinksSharedBetweenNpuPairs) {
  Machine* m = cluster_.machine(0);
  EXPECT_EQ(m->pcie_link_for(0), m->pcie_link_for(1));
  EXPECT_NE(m->pcie_link_for(0), m->pcie_link_for(2));
}

TEST_F(ClusterTest, HccsFasterThanRoce) {
  EXPECT_GT(cluster_.hccs_link(0)->bandwidth_bps(), cluster_.roce_link(0)->bandwidth_bps());
}

class HcclTest : public ::testing::Test {
 protected:
  HcclTest() : cluster_(&sim_, MakeConfig()), hccl_(&cluster_) {}
  static ClusterConfig MakeConfig() {
    ClusterConfig config;
    config.num_machines = 8;
    config.machines_per_scaleup_domain = 4;
    return config;
  }
  sim::Simulator sim_;
  Cluster cluster_;
  Hccl hccl_;
};

TEST_F(HcclTest, SendCompletesInBandwidthTime) {
  TimeNs done = -1;
  Bytes bytes = GiB(9);  // 9 GiB over 90 GB/s HCCS ≈ 0.107 s
  hccl_.Send(0, 8, bytes, [&] { done = sim_.Now(); });
  sim_.Run();
  EXPECT_NEAR(NsToS(done), static_cast<double>(bytes) / (90e9), 0.01);
}

TEST_F(HcclTest, CrossDomainSendUsesSlowerRoce) {
  TimeNs hccs_done = -1;
  TimeNs roce_done = -1;
  {
    sim::Simulator s1;
    Cluster c1(&s1, MakeConfig());
    Hccl h1(&c1);
    h1.Send(0, 8, GiB(4), [&] { hccs_done = s1.Now(); });
    s1.Run();
  }
  {
    sim::Simulator s2;
    Cluster c2(&s2, MakeConfig());
    Hccl h2(&c2);
    h2.Send(0, 8 * 5, GiB(4), [&] { roce_done = s2.Now(); });
    s2.Run();
  }
  EXPECT_GT(roce_done, hccs_done * 3);
}

TEST_F(HcclTest, BroadcastToOneEqualsSend) {
  TimeNs done = -1;
  hccl_.Broadcast(0, 1, GiB(4), LinkType::kHccs, [&] { done = sim_.Now(); });
  sim_.Run();
  double expect_s = static_cast<double>(GiB(4)) / 90e9;
  EXPECT_NEAR(NsToS(done), expect_s, 0.01);
}

TEST_F(HcclTest, BroadcastGrowsLogarithmically) {
  auto broadcast_time = [&](int n) {
    sim::Simulator s;
    Cluster c(&s, MakeConfig());
    Hccl h(&c);
    TimeNs done = -1;
    h.Broadcast(0, n, GiB(8), LinkType::kHccs, [&] { done = s.Now(); });
    s.Run();
    return done;
  };
  TimeNs t1 = broadcast_time(1);
  TimeNs t7 = broadcast_time(7);   // 3 rounds
  TimeNs t63 = broadcast_time(63); // 6 rounds
  EXPECT_NEAR(static_cast<double>(t7) / static_cast<double>(t1), 3.0, 0.2);
  EXPECT_NEAR(static_cast<double>(t63) / static_cast<double>(t1), 6.0, 0.3);
}

TEST_F(HcclTest, BroadcastToZeroCompletesImmediately) {
  bool done = false;
  hccl_.Broadcast(0, 0, GiB(1), LinkType::kHccs, [&] { done = true; });
  sim_.Run();
  EXPECT_TRUE(done);
}

TEST_F(HcclTest, AllReduceScalesWithPayloadAndRanks) {
  EXPECT_EQ(hccl_.AllReduceDuration(1, GiB(1)), 0);
  DurationNs d2 = hccl_.AllReduceDuration(2, MiB(64));
  DurationNs d8 = hccl_.AllReduceDuration(8, MiB(64));
  EXPECT_GT(d2, 0);
  EXPECT_GT(d8, d2);  // more wire traffic and more hops
  DurationNs big = hccl_.AllReduceDuration(4, MiB(256));
  DurationNs small = hccl_.AllReduceDuration(4, MiB(64));
  EXPECT_GT(big, small);
}

TEST(NpuMixTest, ParsesGroupsInOrder) {
  auto specs = ParseNpuMix("gen1:2,gen2:3");
  ASSERT_TRUE(specs.ok());
  ASSERT_EQ(specs->size(), 5u);
  EXPECT_EQ((*specs)[0].name, NpuSpec::Gen1().name);
  EXPECT_EQ((*specs)[1].name, NpuSpec::Gen1().name);
  EXPECT_EQ((*specs)[2].name, NpuSpec::Gen2().name);
  EXPECT_EQ((*specs)[4].name, NpuSpec::Gen2().name);
  EXPECT_LT((*specs)[0].cost_per_hour, (*specs)[2].cost_per_hour);
}

TEST(NpuMixTest, RejectsMalformedMixes) {
  for (const char* bad : {"", "gen1", "gen1:", "gen1:x", "gen1:0", "gen1:-2", "gen3:1",
                          "gen1:2,", "gen1:2,,gen2:1", ":2"}) {
    auto specs = ParseNpuMix(bad);
    EXPECT_FALSE(specs.ok()) << "'" << bad << "' should not parse";
    if (!specs.ok()) {
      EXPECT_EQ(specs.status().code(), StatusCode::kInvalidArgument) << bad;
    }
  }
}

TEST(ClusterConfigValidateTest, AcceptsDefaultsAndMixedFleet) {
  ClusterConfig config;
  EXPECT_TRUE(config.Validate().ok());
  config.num_machines = 4;
  config.machine_specs = *ParseNpuMix("gen2:2,gen1:2");
  EXPECT_TRUE(config.Validate().ok());
  EXPECT_TRUE(config.heterogeneous());
}

TEST(ClusterConfigValidateTest, RejectsNonDivisiblePcieGrouping) {
  ClusterConfig config;
  config.npus_per_machine = 7;  // not divisible by npus_per_pcie_link = 2
  Status s = config.Validate();
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(ClusterConfigValidateTest, RejectsMixSizeMismatch) {
  ClusterConfig config;
  config.num_machines = 4;
  config.machine_specs = *ParseNpuMix("gen1:3");  // 3 specs for 4 machines
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(ClusterConfigValidateTest, RejectsDegenerateSpecInMix) {
  ClusterConfig config;
  config.num_machines = 2;
  config.machine_specs = *ParseNpuMix("gen1:2");
  config.machine_specs[1].cost_per_hour = 0.0;
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(ClusterConfigValidateTest, RejectsSuperPodStraddlingScaleUpDomains) {
  ClusterConfig config;
  config.num_machines = 12;
  config.machines_per_scaleup_domain = 4;
  config.enable_superpod = true;
  config.machines_per_superpod = 6;  // straddles the 4-machine HCCS domains
  EXPECT_EQ(config.Validate().code(), StatusCode::kInvalidArgument);
  config.machines_per_superpod = 8;
  EXPECT_TRUE(config.Validate().ok());
}

TEST(HeteroClusterTest, SpecOfTracksMachineGeneration) {
  sim::Simulator sim;
  ClusterConfig config;
  config.num_machines = 4;
  config.machine_specs = *ParseNpuMix("gen2:2,gen1:2");
  Cluster cluster(&sim, config);
  EXPECT_TRUE(cluster.heterogeneous());
  EXPECT_EQ(cluster.spec_of_machine(0).name, NpuSpec::Gen2().name);
  EXPECT_EQ(cluster.spec_of_machine(3).name, NpuSpec::Gen1().name);
  // Global NPU ids inherit their machine's generation, capacity included.
  EXPECT_EQ(cluster.spec_of(0).hbm_capacity, GiB(64));
  EXPECT_EQ(cluster.spec_of(3 * 8).hbm_capacity, GiB(32));
  EXPECT_EQ(cluster.npu(3 * 8)->hbm_capacity(), GiB(32));
}

class SuperPodTest : public ::testing::Test {
 protected:
  static ClusterConfig MakeConfig() {
    ClusterConfig config;
    config.num_machines = 16;
    config.machines_per_scaleup_domain = 4;
    config.enable_superpod = true;
    config.machines_per_superpod = 8;  // pods: machines 0-7, 8-15
    return config;
  }
  sim::Simulator sim_;
};

TEST_F(SuperPodTest, UbTierSitsBetweenHccsAndRoce) {
  Cluster cluster(&sim_, MakeConfig());
  const NpuId m0 = 0;
  const NpuId m5 = 5 * 8;   // same pod, different HCCS domain
  const NpuId m10 = 10 * 8; // different pod
  EXPECT_EQ(cluster.InterNpuLink(m0, 3 * 8)->type(), LinkType::kHccs);
  EXPECT_TRUE(cluster.SameSuperPod(m0, m5));
  EXPECT_EQ(cluster.InterNpuLink(m0, m5)->type(), LinkType::kUb);
  EXPECT_FALSE(cluster.SameSuperPod(m0, m10));
  EXPECT_EQ(cluster.InterNpuLink(m0, m10)->type(), LinkType::kRoce);
  // Bandwidth ordering makes the tier worth taking: UB above HCCS above RoCE.
  EXPECT_GT(cluster.ub_link(0)->bandwidth_bps(), cluster.hccs_link(0)->bandwidth_bps());
  EXPECT_GT(cluster.hccs_link(0)->bandwidth_bps(), cluster.roce_link(0)->bandwidth_bps());
}

TEST_F(SuperPodTest, WholeClusterIsOnePodWhenSizeIsZero) {
  ClusterConfig config = MakeConfig();
  config.machines_per_superpod = 0;
  Cluster cluster(&sim_, config);
  EXPECT_TRUE(cluster.SameSuperPod(0, 15 * 8));
  EXPECT_EQ(cluster.InterNpuLink(0, 15 * 8)->type(), LinkType::kUb);
}

TEST_F(SuperPodTest, DisabledClusterHasNoUbAttachment) {
  ClusterConfig config = MakeConfig();
  config.enable_superpod = false;
  Cluster cluster(&sim_, config);
  EXPECT_EQ(cluster.ub_link(0), nullptr);
  EXPECT_EQ(cluster.LinkOfType(0, LinkType::kUb), nullptr);
  EXPECT_EQ(cluster.InterNpuLink(0, 5 * 8)->type(), LinkType::kRoce);
}

TEST_F(SuperPodTest, UbLinkSharesBandwidthAcrossConcurrentFlows) {
  ClusterConfig config = MakeConfig();
  config.ub_gbps = 1.0;  // 1 GB/s so the arithmetic below is exact
  config.ub_latency = 0;
  Cluster cluster(&sim_, config);
  SharedLink* ub = cluster.LinkOfType(0, LinkType::kUb);
  ASSERT_NE(ub, nullptr);
  EXPECT_EQ(ub->type(), LinkType::kUb);
  TimeNs done_a = -1;
  TimeNs done_b = -1;
  ub->StartFlow(1'000'000'000, [&] { done_a = sim_.Now(); });
  ub->StartFlow(1'000'000'000, [&] { done_b = sim_.Now(); });
  sim_.Run();
  // Two 1 GB flows over a shared 1 GB/s UB attachment finish together at ~2 s.
  EXPECT_NEAR(NsToS(done_a), 2.0, 0.01);
  EXPECT_NEAR(NsToS(done_b), 2.0, 0.01);
}

TEST(MachineTest, PageCacheDrivesModelLoadHitAndMissPaths) {
  sim::Simulator sim;
  ClusterConfig config;
  config.dram_capacity = GiB(96);
  Cluster cluster(&sim, config);
  Machine* host = cluster.machine(0);
  // Miss path: a cold model is absent from the page cache, so a load must
  // stream from SSD — the strictly slower medium.
  EXPECT_FALSE(host->page_cache().Contains("yi-34b"));
  EXPECT_LT(host->ssd_link()->bandwidth_bps(), host->pcie_link_for(0)->bandwidth_bps());
  // Hit path after preload: resident in DRAM, served over PCIe.
  EXPECT_TRUE(host->page_cache().Insert("yi-34b", GiB(64), sim.Now()));
  EXPECT_TRUE(host->page_cache().Contains("yi-34b"));
  // Eviction turns the next load back into a miss.
  EXPECT_TRUE(host->page_cache().Insert("qwen-72b", GiB(90), SToNs(1)));
  EXPECT_FALSE(host->page_cache().Contains("yi-34b"));
  EXPECT_TRUE(host->page_cache().Contains("qwen-72b"));
}

}  // namespace
}  // namespace deepserve::hw
