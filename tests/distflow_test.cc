#include <gtest/gtest.h>

#include "common/time_units.h"
#include "common/types.h"
#include "distflow/distflow.h"
#include "hw/cluster.h"
#include "sim/simulator.h"

namespace deepserve::distflow {
namespace {

class TransferEngineTest : public ::testing::Test {
 protected:
  TransferEngineTest() : cluster_(&sim_, MakeConfig()), engine_(&sim_, &cluster_, {}) {
    // Endpoint 0 -> NPU 0 (machine 0), 1 -> NPU 8 (machine 1, same domain),
    // 2 -> NPU 40 (machine 5, other scale-up domain).
    EXPECT_TRUE(engine_.RegisterEndpoint(0, 0).ok());
    EXPECT_TRUE(engine_.RegisterEndpoint(1, 8).ok());
    EXPECT_TRUE(engine_.RegisterEndpoint(2, 40).ok());
  }
  static hw::ClusterConfig MakeConfig() {
    hw::ClusterConfig config;
    config.num_machines = 8;
    config.machines_per_scaleup_domain = 4;
    return config;
  }
  MemRegion Region(EndpointId ep, rtc::Tier tier, Bytes len) {
    return MemRegion{ep, tier, 0, len};
  }

  sim::Simulator sim_;
  hw::Cluster cluster_;
  TransferEngine engine_;
};

TEST_F(TransferEngineTest, RegisterRejectsDuplicatesAndBadNpus) {
  EXPECT_FALSE(engine_.RegisterEndpoint(0, 1).ok());
  EXPECT_FALSE(engine_.RegisterEndpoint(9, 9999).ok());
  EXPECT_FALSE(engine_.RegisterEndpoint(kInvalidEndpoint, 0).ok());
}

TEST_F(TransferEngineTest, TransferRequiresLink) {
  Status s = engine_.Transfer(Region(0, rtc::Tier::kNpu, 100), Region(1, rtc::Tier::kNpu, 100),
                              nullptr);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(engine_.stats().rejected, 1);
}

TEST_F(TransferEngineTest, LinkClusterEnablesTransfers) {
  bool ready = false;
  ASSERT_TRUE(engine_.LinkCluster({0, 1, 2}, [&] { ready = true; }).ok());
  sim_.Run();
  EXPECT_TRUE(ready);
  EXPECT_TRUE(engine_.Linked(0, 1));
  EXPECT_TRUE(engine_.Linked(1, 2));
  bool done = false;
  ASSERT_TRUE(engine_.Transfer(Region(0, rtc::Tier::kNpu, GiB(1)),
                               Region(1, rtc::Tier::kNpu, GiB(1)), [&] { done = true; })
                  .ok());
  sim_.Run();
  EXPECT_TRUE(done);
  EXPECT_EQ(engine_.stats().transfers, 1);
}

TEST_F(TransferEngineTest, LinkClusterRejectsUnknownEndpoint) {
  EXPECT_FALSE(engine_.LinkCluster({0, 42}, nullptr).ok());
}

TEST_F(TransferEngineTest, SelfLinkImplicit) {
  EXPECT_TRUE(engine_.Linked(0, 0));
}

TEST_F(TransferEngineTest, SameDomainUsesHccsSpeed) {
  ASSERT_TRUE(engine_.LinkCluster({0, 1, 2}, nullptr).ok());
  TimeNs near_done = 0;
  TimeNs far_done = 0;
  engine_.Transfer(Region(0, rtc::Tier::kNpu, GiB(8)), Region(1, rtc::Tier::kNpu, GiB(8)),
                   [&] { near_done = sim_.Now(); })
      .ok();
  sim_.Run();
  TimeNs start = sim_.Now();
  engine_.Transfer(Region(0, rtc::Tier::kNpu, GiB(8)), Region(2, rtc::Tier::kNpu, GiB(8)),
                   [&] { far_done = sim_.Now(); })
      .ok();
  sim_.Run();
  // RoCE (20 GB/s) vs HCCS (90 GB/s): cross-domain is ~4.5x slower.
  EXPECT_GT((far_done - start), 3 * near_done);
}

TEST_F(TransferEngineTest, DramToNpuRidesPcie) {
  bool done = false;
  ASSERT_TRUE(engine_.Transfer(Region(0, rtc::Tier::kDram, GiB(16)),
                               Region(0, rtc::Tier::kNpu, GiB(16)), [&] { done = true; })
                  .ok());
  sim_.Run();
  EXPECT_TRUE(done);
  // 16 GiB at 32 GB/s PCIe ≈ 0.54 s.
  EXPECT_NEAR(NsToS(sim_.Now()), 0.537, 0.05);
}

TEST_F(TransferEngineTest, SsdToNpuIsTwoHops) {
  ASSERT_TRUE(engine_.Transfer(Region(0, rtc::Tier::kSsd, GiB(3)),
                               Region(0, rtc::Tier::kNpu, GiB(3)), nullptr)
                  .ok());
  sim_.Run();
  EXPECT_EQ(engine_.stats().multi_hop_transfers, 1);
  // SSD hop (3 GB/s) dominates: ~1.07 s + PCIe hop ~0.1 s.
  EXPECT_GT(NsToS(sim_.Now()), 1.0);
}

TEST_F(TransferEngineTest, SameTierSameDeviceIsOverheadOnly) {
  TimeNs done = -1;
  ASSERT_TRUE(engine_.Transfer(Region(0, rtc::Tier::kDram, GiB(4)),
                               Region(0, rtc::Tier::kDram, GiB(4)),
                               [&] { done = sim_.Now(); })
                  .ok());
  sim_.Run();
  EXPECT_EQ(done, engine_.config().per_op_overhead);
}

TEST_F(TransferEngineTest, TransfersBytesMinOfRegions) {
  ASSERT_TRUE(engine_.Transfer(Region(0, rtc::Tier::kDram, GiB(4)),
                               Region(0, rtc::Tier::kNpu, GiB(1)), nullptr)
                  .ok());
  sim_.Run();
  EXPECT_EQ(engine_.stats().bytes_moved, GiB(1));
}

TEST_F(TransferEngineTest, ForcedBackendOverridesTopology) {
  DistFlowConfig config;
  config.force_backend = true;
  config.forced_backend = hw::LinkType::kRoce;
  TransferEngine forced(&sim_, &cluster_, config);
  ASSERT_TRUE(forced.RegisterEndpoint(0, 0).ok());
  ASSERT_TRUE(forced.RegisterEndpoint(1, 8).ok());  // same domain, but forced RoCE
  ASSERT_TRUE(forced.LinkCluster({0, 1}, nullptr).ok());
  TimeNs done = 0;
  forced
      .Transfer(Region(0, rtc::Tier::kNpu, GiB(8)), Region(1, rtc::Tier::kNpu, GiB(8)),
                [&] { done = sim_.Now(); })
      .ok();
  sim_.Run();
  EXPECT_NEAR(NsToS(done), static_cast<double>(GiB(8)) / 20e9, 0.1);
}

TEST_F(TransferEngineTest, WorkerShardingSerializesPerPair) {
  DistFlowConfig config;
  config.num_workers = 1;
  config.per_op_overhead = MsToNs(1);
  TransferEngine serialized(&sim_, &cluster_, config);
  ASSERT_TRUE(serialized.RegisterEndpoint(0, 0).ok());
  int completed = 0;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(serialized
                    .Transfer(Region(0, rtc::Tier::kDram, 1), Region(0, rtc::Tier::kDram, 1),
                              [&] { ++completed; })
                    .ok());
  }
  sim_.Run();
  EXPECT_EQ(completed, 10);
  // 10 ops x 1 ms serialized through a single worker.
  EXPECT_GE(sim_.Now(), MsToNs(10));
}

TEST_F(TransferEngineTest, EstimateMatchesIsolatedTransfer) {
  auto src = Region(0, rtc::Tier::kDram, GiB(8));
  auto dst = Region(0, rtc::Tier::kNpu, GiB(8));
  auto estimate = engine_.EstimateTransfer(src, dst);
  ASSERT_TRUE(estimate.ok());
  TimeNs done = -1;
  ASSERT_TRUE(engine_.Transfer(src, dst, [&] { done = sim_.Now(); }).ok());
  sim_.Run();
  EXPECT_NEAR(static_cast<double>(*estimate), static_cast<double>(done),
              static_cast<double>(MsToNs(20)));
}

TEST_F(TransferEngineTest, EstimateAccountsForContention) {
  auto src = Region(0, rtc::Tier::kDram, GiB(8));
  auto dst = Region(0, rtc::Tier::kNpu, GiB(8));
  DurationNs idle_estimate = engine_.EstimateTransfer(src, dst).value();
  ASSERT_TRUE(engine_.Transfer(src, dst, nullptr).ok());
  sim_.RunUntil(MsToNs(50));  // let the flow start
  DurationNs busy_estimate = engine_.EstimateTransfer(src, dst).value();
  EXPECT_GT(busy_estimate, idle_estimate + idle_estimate / 2);
  sim_.Run();
}

}  // namespace
}  // namespace deepserve::distflow
