// MoE model support and operator-level (attention-expert) disaggregation
// (§4.5) tests.

#include <gtest/gtest.h>

#include "flowserve/engine.h"
#include "model/cost_model.h"
#include "model/model_spec.h"
#include "sim/simulator.h"

namespace deepserve::model {
namespace {

TEST(MoeSpecTest, MixtralParamCounts) {
  ModelSpec m = ModelSpec::Mixtral8x7B();
  EXPECT_TRUE(m.is_moe());
  // Total ~47B, active ~13B (the well-known Mixtral numbers).
  EXPECT_NEAR(static_cast<double>(m.ParamCount()), 47e9, 5e9);
  EXPECT_NEAR(static_cast<double>(m.ActiveParamCount()), 13e9, 2e9);
  EXPECT_LT(m.ActiveParamCount(), m.ParamCount());
}

TEST(MoeSpecTest, DenseActiveEqualsTotal) {
  ModelSpec m = ModelSpec::Llama3_8B();
  EXPECT_FALSE(m.is_moe());
  EXPECT_EQ(m.ActiveParamCount(), m.ParamCount());
}

TEST(MoeSpecTest, FineGrainedMoePreset) {
  ModelSpec m = ModelSpec::DeepSeekMoe16B();
  EXPECT_EQ(m.num_experts, 64);
  EXPECT_NEAR(static_cast<double>(m.ParamCount()), 16e9, 4e9);
}

class MoeCostTest : public ::testing::Test {
 protected:
  MoeCostTest()
      : moe_(ModelSpec::Mixtral8x7B(), hw::NpuSpec::Gen2(), ParallelismConfig{4, 1, 1}) {}
  CostModel moe_;
};

TEST_F(MoeCostTest, SmallBatchReadsOnlyTouchedExperts) {
  // One decode token touches top-k=2 experts per layer, not all 8.
  double one = moe_.WeightReadBytes(1);
  double all = static_cast<double>(moe_.model().WeightBytes());
  EXPECT_LT(one, 0.5 * all);
  // A large batch touches every expert: reads converge to the full weights.
  EXPECT_NEAR(moe_.WeightReadBytes(512), all, all * 0.01);
}

TEST_F(MoeCostTest, MoeDecodeCheaperThanDenseOfSameTotalSize) {
  // A dense model with Mixtral's TOTAL parameter count decodes slower at
  // small batch: it must stream all weights while MoE streams top-k experts.
  ModelSpec dense = ModelSpec::Mixtral8x7B();
  dense.num_experts = 0;
  dense.experts_per_token = 0;
  dense.intermediate_dim *= 8;  // fold the 8 experts into one giant MLP
  dense.name = "dense-47b";
  CostModel dense_cost(dense, hw::NpuSpec::Gen2(), ParallelismConfig{4, 1, 1});
  EXPECT_LT(moe_.DecodeStepDuration(1, 1024), dense_cost.DecodeStepDuration(1, 1024));
}

TEST_F(MoeCostTest, AeModeSplitsTheStep) {
  CostModel ae(ModelSpec::Mixtral8x7B(), hw::NpuSpec::Gen2(), ParallelismConfig{4, 1, 1});
  AeDisaggConfig config;
  config.enabled = true;
  ae.SetAeDisagg(config);
  // With a fast link, AE decode is no slower than ~the colocated step (the
  // two device pipelines overlap), and not absurdly faster either.
  DurationNs coloc = moe_.DecodeStepDuration(16, 2048);
  DurationNs split = ae.DecodeStepDuration(16, 2048);
  EXPECT_LT(split, coloc);
  EXPECT_GT(split, coloc / 4);
}

TEST_F(MoeCostTest, AeSlowLinkBecomesBottleneck) {
  AeDisaggConfig fast;
  fast.enabled = true;
  fast.activation_link_gbps = 200.0;
  AeDisaggConfig slow;
  slow.enabled = true;
  slow.activation_link_gbps = 0.4;
  CostModel fast_cost(ModelSpec::Mixtral8x7B(), hw::NpuSpec::Gen2(), {4, 1, 1});
  fast_cost.SetAeDisagg(fast);
  CostModel slow_cost(ModelSpec::Mixtral8x7B(), hw::NpuSpec::Gen2(), {4, 1, 1});
  slow_cost.SetAeDisagg(slow);
  EXPECT_GT(slow_cost.DecodeStepDuration(64, 2048), 2 * fast_cost.DecodeStepDuration(64, 2048));
}

TEST_F(MoeCostTest, AeFreesHbmForKv) {
  CostModel ae(ModelSpec::Mixtral8x7B(), hw::NpuSpec::Gen2(), ParallelismConfig{4, 1, 1});
  AeDisaggConfig config;
  config.enabled = true;
  ae.SetAeDisagg(config);
  // The attention TE sheds the expert weights (~96% of Mixtral's bytes),
  // growing the KV budget substantially (bounded by how much of HBM the
  // weights occupied in the first place).
  EXPECT_GT(ae.MaxKvTokensPerNpu(0.9),
            static_cast<int64_t>(1.5 * static_cast<double>(moe_.MaxKvTokensPerNpu(0.9))));
}

TEST(MoeEngineTest, AeEngineServesRequests) {
  sim::Simulator sim;
  flowserve::EngineConfig config;
  config.model = ModelSpec::Mixtral8x7B();
  config.parallelism = {4, 1, 1};
  config.ae_disagg.enabled = true;
  flowserve::Engine engine(&sim, config);
  int done = 0;
  for (int i = 0; i < 4; ++i) {
    workload::RequestSpec spec;
    spec.id = static_cast<workload::RequestId>(i + 1);
    spec.decode_len = 64;
    for (int j = 0; j < 1024; ++j) {
      spec.prompt.push_back(static_cast<TokenId>(300 + 701 * i + j % 4000));
    }
    engine.Submit(spec, nullptr, [&](const flowserve::Sequence&) { ++done; });
  }
  sim.Run();
  EXPECT_EQ(done, 4);
  // The AE engine's KV budget reflects the attention-only weight footprint.
  flowserve::EngineConfig coloc = config;
  coloc.ae_disagg.enabled = false;
  sim::Simulator sim2;
  flowserve::Engine coloc_engine(&sim2, coloc);
  EXPECT_GT(engine.kv_block_capacity(), coloc_engine.kv_block_capacity());
}

}  // namespace
}  // namespace deepserve::model
