// BlockPool invariant audit: a randomized operation stream (allocate, pin,
// commit, tier-promote, unref, evict) checked after every step against a
// shadow model. The audited invariants:
//   * per-tier used() equals the number of live blocks resident on the tier,
//     and never exceeds capacity;
//   * ref_count never goes negative; an unreferenced *uncached* block is
//     destroyed immediately, an unreferenced cached block is preserved until
//     evicted;
//   * failed Allocate/AddResidency calls leave the pool untouched (no
//     partial allocation).

#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <vector>

#include "common/rng.h"
#include "rtc/block_pool.h"

namespace deepserve::rtc {
namespace {

struct ShadowBlock {
  int32_t ref = 0;
  uint8_t residency = 0;
  bool cached = false;
};

class Audit {
 public:
  Audit(BlockPool* pool, std::map<BlockId, ShadowBlock>* shadow)
      : pool_(pool), shadow_(shadow) {}

  void Check() const {
    int64_t used[3] = {0, 0, 0};
    for (const auto& [id, sb] : *shadow_) {
      ASSERT_TRUE(pool_->Exists(id)) << "block " << id << " vanished";
      const BlockInfo& info = pool_->info(id);
      EXPECT_EQ(info.ref_count, sb.ref) << "block " << id;
      EXPECT_GE(info.ref_count, 0) << "block " << id;
      EXPECT_EQ(info.residency, sb.residency) << "block " << id;
      EXPECT_EQ(info.cached(), sb.cached) << "block " << id;
      for (Tier tier : {Tier::kNpu, Tier::kDram, Tier::kSsd}) {
        if (info.resident(tier)) {
          ++used[static_cast<size_t>(tier)];
        }
      }
      // The preservation rule: a block with no references exists only if it
      // was committed to the cache index.
      if (sb.ref == 0) {
        EXPECT_TRUE(sb.cached) << "unreferenced private block " << id << " survived";
      }
    }
    EXPECT_EQ(pool_->total_blocks(), shadow_->size());
    for (Tier tier : {Tier::kNpu, Tier::kDram, Tier::kSsd}) {
      EXPECT_EQ(pool_->used(tier), used[static_cast<size_t>(tier)])
          << "tier " << TierToString(tier) << " accounting drifted";
      EXPECT_LE(pool_->used(tier), pool_->capacity(tier));
      EXPECT_EQ(pool_->free_blocks(tier), pool_->capacity(tier) - pool_->used(tier));
    }
  }

 private:
  BlockPool* pool_;
  std::map<BlockId, ShadowBlock>* shadow_;
};

BlockId PickLive(Rng& rng, const std::map<BlockId, ShadowBlock>& shadow) {
  if (shadow.empty()) {
    return kInvalidBlock;
  }
  auto it = shadow.begin();
  std::advance(it, rng.UniformInt(0, static_cast<int64_t>(shadow.size()) - 1));
  return it->first;
}

TEST(BlockPoolAuditTest, RandomOpStreamPreservesInvariants) {
  for (uint64_t seed : {2ull, 29ull, 400ull}) {
    BlockPoolConfig config;
    config.npu_capacity = 24;
    config.dram_capacity = 32;
    BlockPool pool(config);
    std::map<BlockId, ShadowBlock> shadow;
    Audit audit(&pool, &shadow);
    Rng rng(seed);
    BlockKey next_key = 1;
    TimeNs now = 0;

    for (int step = 0; step < 2000; ++step) {
      ++now;
      switch (rng.UniformInt(0, 6)) {
        case 0: {  // allocate 1..4 private blocks on a random tier
          Tier tier = static_cast<Tier>(rng.UniformInt(0, 2));
          int64_t n = rng.UniformInt(1, 4);
          int64_t used_before = pool.used(tier);
          auto result = pool.Allocate(n, tier, now);
          if (result.ok()) {
            for (BlockId id : *result) {
              shadow[id] = ShadowBlock{1, TierBit(tier), false};
            }
          } else {
            EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
            EXPECT_GT(pool.used(tier) + n, pool.capacity(tier));
            EXPECT_EQ(pool.used(tier), used_before) << "failed Allocate leaked blocks";
          }
          break;
        }
        case 1: {  // pin
          BlockId id = PickLive(rng, shadow);
          if (id != kInvalidBlock) {
            pool.Ref(id);
            ++shadow[id].ref;
          }
          break;
        }
        case 2: {  // unref: uncached blocks die at zero, cached are preserved
          BlockId id = PickLive(rng, shadow);
          if (id != kInvalidBlock && shadow[id].ref > 0) {
            pool.Unref(id);
            ShadowBlock& sb = shadow[id];
            if (--sb.ref == 0 && !sb.cached) {
              shadow.erase(id);
              EXPECT_FALSE(pool.Exists(id));
            }
          }
          break;
        }
        case 3: {  // commit: private -> cached content block
          BlockId id = PickLive(rng, shadow);
          if (id != kInvalidBlock && !shadow[id].cached) {
            pool.SetKey(id, next_key);
            shadow[id].cached = true;
            ++next_key;
          }
          break;
        }
        case 4: {  // tier-promote / add residency copy
          BlockId id = PickLive(rng, shadow);
          if (id == kInvalidBlock) {
            break;
          }
          Tier tier = static_cast<Tier>(rng.UniformInt(0, 2));
          int64_t used_before = pool.used(tier);
          Status status = pool.AddResidency(id, tier);
          if (status.ok()) {
            shadow[id].residency |= TierBit(tier);
          } else {
            EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
            EXPECT_EQ(pool.used(tier), used_before);
            EXPECT_FALSE((shadow[id].residency & TierBit(tier)) != 0)
                << "AddResidency failed on an already-resident block";
          }
          break;
        }
        case 5: {  // drop one residency copy (demote)
          BlockId id = PickLive(rng, shadow);
          if (id == kInvalidBlock) {
            break;
          }
          Tier tier = static_cast<Tier>(rng.UniformInt(0, 2));
          pool.DropResidency(id, tier);
          shadow[id].residency &= static_cast<uint8_t>(~TierBit(tier));
          break;
        }
        case 6: {  // evict: destroy an unreferenced cached block
          BlockId victim = kInvalidBlock;
          for (const auto& [id, sb] : shadow) {
            if (sb.ref == 0) {
              victim = id;
              break;
            }
          }
          if (victim != kInvalidBlock) {
            pool.Destroy(victim);
            shadow.erase(victim);
            EXPECT_FALSE(pool.Exists(victim));
          }
          break;
        }
      }
      audit.Check();
      if (::testing::Test::HasFatalFailure()) {
        FAIL() << "seed " << seed << " step " << step;
      }
    }
    // The stream must have actually exercised the interesting paths.
    EXPECT_GT(shadow.size(), 0u);
  }
}

TEST(BlockPoolAuditTest, ExhaustedTierRejectsWithoutPartialAllocation) {
  BlockPoolConfig config;
  config.npu_capacity = 4;
  config.dram_capacity = 4;
  BlockPool pool(config);
  auto a = pool.Allocate(3, Tier::kNpu, 1);
  ASSERT_TRUE(a.ok());
  auto b = pool.Allocate(2, Tier::kNpu, 2);
  ASSERT_FALSE(b.ok());
  EXPECT_EQ(b.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(pool.used(Tier::kNpu), 3) << "failed allocation changed usage";
  EXPECT_EQ(pool.total_blocks(), 3u);
  // SSD is unbounded backing store.
  EXPECT_TRUE(pool.Allocate(1000, Tier::kSsd, 3).ok());
}

TEST(BlockPoolAuditTest, PromoteThenDemoteKeepsOneCopyAccounted) {
  BlockPool pool(BlockPoolConfig{});
  BlockId id = pool.Allocate(1, Tier::kNpu, 1).value()[0];
  ASSERT_TRUE(pool.AddResidency(id, Tier::kDram).ok());
  EXPECT_TRUE(pool.info(id).resident(Tier::kNpu));
  EXPECT_TRUE(pool.info(id).resident(Tier::kDram));
  EXPECT_EQ(pool.used(Tier::kNpu), 1);
  EXPECT_EQ(pool.used(Tier::kDram), 1);
  // Re-adding an existing copy is a no-op, not a double count.
  ASSERT_TRUE(pool.AddResidency(id, Tier::kDram).ok());
  EXPECT_EQ(pool.used(Tier::kDram), 1);
  pool.DropResidency(id, Tier::kNpu);
  EXPECT_FALSE(pool.info(id).resident(Tier::kNpu));
  EXPECT_EQ(pool.used(Tier::kNpu), 0);
  // Dropping a non-resident tier is a no-op.
  pool.DropResidency(id, Tier::kNpu);
  EXPECT_EQ(pool.used(Tier::kNpu), 0);
  // Unref of the (uncached) block releases its remaining DRAM copy.
  pool.Unref(id);
  EXPECT_FALSE(pool.Exists(id));
  EXPECT_EQ(pool.used(Tier::kDram), 0);
}

}  // namespace
}  // namespace deepserve::rtc
