// Position-independent caching (PIC) tests — RTC content-hash index and the
// engine's prefill-compute discount (§4.3, EPIC-style).

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "flowserve/engine.h"
#include "rtc/rtc_master.h"
#include "sim/simulator.h"

namespace deepserve {
namespace {

std::vector<TokenId> Iota(int n, int start) {
  std::vector<TokenId> out(static_cast<size_t>(n));
  std::iota(out.begin(), out.end(), static_cast<TokenId>(start));
  return out;
}

class RtcPicTest : public ::testing::Test {
 protected:
  RtcPicTest() {
    rtc::RtcConfig config;
    config.block_size = 16;
    config.pool.npu_capacity = 512;
    config.enable_pic = true;
    master_ = std::make_unique<rtc::RtcMaster>(&sim_, config);
  }

  void PreserveTokens(const std::vector<TokenId>& tokens) {
    int64_t n = static_cast<int64_t>(tokens.size()) / 16;
    auto blocks = master_->AllocBlocks(n).value();
    master_->Preserve(tokens, blocks);
    master_->Free(blocks);
  }

  sim::Simulator sim_;
  std::unique_ptr<rtc::RtcMaster> master_;
};

TEST_F(RtcPicTest, FindsChunkAtDifferentPosition) {
  // Cache a document as a standalone context.
  auto doc = Iota(128, 5000);
  PreserveTokens(doc);
  // A new prompt embeds the same document after an unrelated 64-token header:
  // prefix matching finds nothing, PIC finds the document blocks.
  auto prompt = Iota(64, 90000);
  prompt.insert(prompt.end(), doc.begin(), doc.end());
  EXPECT_FALSE(master_->MatchByPrefixToken(prompt).hit());
  auto pic = master_->MatchPositionIndependent(prompt, 0);
  EXPECT_EQ(pic.matched_tokens, 128);
  EXPECT_EQ(pic.blocks.size(), 8u);
  EXPECT_EQ(master_->stats().pic_hits, 1);
}

TEST_F(RtcPicTest, SkipTokensExcludesPrefixRegion) {
  auto doc = Iota(128, 5000);
  PreserveTokens(doc);
  // Prefix region covers the doc itself: skipping it yields no PIC match.
  auto pic = master_->MatchPositionIndependent(doc, 128);
  EXPECT_EQ(pic.matched_tokens, 0);
}

TEST_F(RtcPicTest, MisalignedChunkDoesNotMatch) {
  auto doc = Iota(128, 5000);
  PreserveTokens(doc);
  // Shift by a non-multiple of the block size: content no longer aligns to
  // block boundaries, so the content hashes differ.
  auto prompt = Iota(7, 90000);
  prompt.insert(prompt.end(), doc.begin(), doc.end());
  auto pic = master_->MatchPositionIndependent(prompt, 0);
  EXPECT_EQ(pic.matched_tokens, 0);
}

TEST_F(RtcPicTest, StaleEntriesPrunedAfterEviction) {
  auto doc = Iota(64, 5000);
  PreserveTokens(doc);
  // Evict everything.
  ASSERT_TRUE(master_->EnsureNpuFree(master_->config().pool.npu_capacity).ok());
  auto prompt = Iota(16, 90000);
  prompt.insert(prompt.end(), doc.begin(), doc.end());
  auto pic = master_->MatchPositionIndependent(prompt, 0);
  EXPECT_EQ(pic.matched_tokens, 0);
}

TEST_F(RtcPicTest, DisabledByDefault) {
  rtc::RtcConfig config;
  config.pool.npu_capacity = 64;
  rtc::RtcMaster master(&sim_, config);
  auto doc = Iota(64, 5000);
  auto blocks = master.AllocBlocks(4).value();
  master.Preserve(doc, blocks);
  master.Free(blocks);
  EXPECT_EQ(master.MatchPositionIndependent(doc, 0).matched_tokens, 0);
}

class EnginePicTest : public ::testing::Test {
 protected:
  flowserve::EngineConfig Config(bool pic) {
    flowserve::EngineConfig config;
    config.model = model::ModelSpec::Tiny1B();
    config.parallelism = {1, 1, 1};
    config.kv_block_capacity_override = 8192;
    config.enable_pic = pic;
    return config;
  }

  // RAG-style: cache N document chunks, then serve a prompt that stitches
  // them in a DIFFERENT order behind a fresh question header. Returns TTFT.
  TimeNs RunRag(bool pic) {
    sim::Simulator sim;
    flowserve::Engine engine(&sim, Config(pic));
    std::vector<std::vector<TokenId>> docs;
    for (int d = 0; d < 4; ++d) {
      docs.push_back(Iota(512, 10000 + 3000 * d));
    }
    // Warm the cache: one request per document.
    for (int d = 0; d < 4; ++d) {
      workload::RequestSpec warm;
      warm.id = static_cast<workload::RequestId>(d + 1);
      warm.prompt = docs[static_cast<size_t>(d)];
      warm.decode_len = 2;
      engine.Submit(warm, nullptr, nullptr);
    }
    sim.Run();
    // The served prompt: header + docs in reversed order (prefix match fails
    // past the first token, PIC matches every document block).
    workload::RequestSpec spec;
    spec.id = 100;
    spec.prompt = Iota(64, 99000);
    for (int d = 3; d >= 0; --d) {
      spec.prompt.insert(spec.prompt.end(), docs[static_cast<size_t>(d)].begin(),
                         docs[static_cast<size_t>(d)].end());
    }
    spec.decode_len = 2;
    TimeNs submit = sim.Now();
    TimeNs first = 0;
    engine.Submit(spec, [&](const flowserve::Sequence& seq) { first = seq.first_token_time; },
                  nullptr);
    sim.Run();
    pic_reused_ = engine.stats().pic_reused_tokens;
    return first - submit;
  }

  int64_t pic_reused_ = 0;
};

TEST_F(EnginePicTest, RagPromptPrefillsFasterWithPic) {
  TimeNs without = RunRag(false);
  EXPECT_EQ(pic_reused_, 0);
  TimeNs with = RunRag(true);
  EXPECT_GT(pic_reused_, 1500);  // ~4 x 512 tokens rediscovered by content
  // EPIC-style gain: most of the prefill compute is discounted.
  EXPECT_LT(static_cast<double>(with), 0.6 * static_cast<double>(without));
}

TEST_F(EnginePicTest, PicBlocksReleasedAfterCompletion) {
  sim::Simulator sim;
  flowserve::Engine engine(&sim, Config(true));
  workload::RequestSpec warm;
  warm.id = 1;
  warm.prompt = Iota(256, 5000);
  warm.decode_len = 2;
  engine.Submit(warm, nullptr, nullptr);
  sim.Run();
  workload::RequestSpec spec;
  spec.id = 2;
  spec.prompt = Iota(32, 90000);
  spec.prompt.insert(spec.prompt.end(), warm.prompt.begin(), warm.prompt.end());
  spec.decode_len = 2;
  engine.Submit(spec, nullptr, nullptr);
  sim.Run();
  EXPECT_TRUE(engine.idle());
  // All PIC pins released: every cached block is unreferenced again.
  EXPECT_TRUE(engine.rtc().EnsureNpuFree(engine.kv_block_capacity()).ok());
}

}  // namespace
}  // namespace deepserve
