// Position-independent caching (PIC) tests — RTC content-hash index and the
// engine's prefill-compute discount (§4.3, EPIC-style).

#include <gtest/gtest.h>

#include <numeric>
#include <vector>

#include "flowserve/engine.h"
#include "rtc/rtc_master.h"
#include "sim/simulator.h"

namespace deepserve {
namespace {

std::vector<TokenId> Iota(int n, int start) {
  std::vector<TokenId> out(static_cast<size_t>(n));
  std::iota(out.begin(), out.end(), static_cast<TokenId>(start));
  return out;
}

class RtcPicTest : public ::testing::Test {
 protected:
  RtcPicTest() {
    rtc::RtcConfig config;
    config.block_size = 16;
    config.pool.npu_capacity = 512;
    config.enable_pic = true;
    master_ = std::make_unique<rtc::RtcMaster>(&sim_, config);
  }

  void PreserveTokens(const std::vector<TokenId>& tokens) {
    int64_t n = static_cast<int64_t>(tokens.size()) / 16;
    auto blocks = master_->AllocBlocks(n).value();
    master_->Preserve(tokens, blocks);
    master_->Free(blocks);
  }

  sim::Simulator sim_;
  std::unique_ptr<rtc::RtcMaster> master_;
};

TEST_F(RtcPicTest, FindsChunkAtDifferentPosition) {
  // Cache a document as a standalone context.
  auto doc = Iota(128, 5000);
  PreserveTokens(doc);
  // A new prompt embeds the same document after an unrelated 64-token header:
  // prefix matching finds nothing, PIC finds the document blocks.
  auto prompt = Iota(64, 90000);
  prompt.insert(prompt.end(), doc.begin(), doc.end());
  EXPECT_FALSE(master_->MatchByPrefixToken(prompt).hit());
  auto pic = master_->MatchPositionIndependent(prompt, 0);
  EXPECT_EQ(pic.matched_tokens, 128);
  EXPECT_EQ(pic.blocks.size(), 8u);
  EXPECT_EQ(master_->stats().pic_hits, 1);
}

TEST_F(RtcPicTest, SkipTokensExcludesPrefixRegion) {
  auto doc = Iota(128, 5000);
  PreserveTokens(doc);
  // Prefix region covers the doc itself: skipping it yields no PIC match.
  auto pic = master_->MatchPositionIndependent(doc, 128);
  EXPECT_EQ(pic.matched_tokens, 0);
}

TEST_F(RtcPicTest, MisalignedChunkDoesNotMatch) {
  auto doc = Iota(128, 5000);
  PreserveTokens(doc);
  // Shift by a non-multiple of the block size: content no longer aligns to
  // block boundaries, so the content hashes differ.
  auto prompt = Iota(7, 90000);
  prompt.insert(prompt.end(), doc.begin(), doc.end());
  auto pic = master_->MatchPositionIndependent(prompt, 0);
  EXPECT_EQ(pic.matched_tokens, 0);
}

TEST_F(RtcPicTest, StaleEntriesPrunedAfterEviction) {
  auto doc = Iota(64, 5000);
  PreserveTokens(doc);
  // Evict everything.
  ASSERT_TRUE(master_->EnsureNpuFree(master_->config().pool.npu_capacity).ok());
  auto prompt = Iota(16, 90000);
  prompt.insert(prompt.end(), doc.begin(), doc.end());
  auto pic = master_->MatchPositionIndependent(prompt, 0);
  EXPECT_EQ(pic.matched_tokens, 0);
}

TEST_F(RtcPicTest, DisabledByDefault) {
  rtc::RtcConfig config;
  config.pool.npu_capacity = 64;
  rtc::RtcMaster master(&sim_, config);
  auto doc = Iota(64, 5000);
  auto blocks = master.AllocBlocks(4).value();
  master.Preserve(doc, blocks);
  master.Free(blocks);
  EXPECT_EQ(master.MatchPositionIndependent(doc, 0).matched_tokens, 0);
}

class EnginePicTest : public ::testing::Test {
 protected:
  flowserve::EngineConfig Config(bool pic) {
    flowserve::EngineConfig config;
    config.model = model::ModelSpec::Tiny1B();
    config.parallelism = {1, 1, 1};
    config.kv_block_capacity_override = 8192;
    config.enable_pic = pic;
    return config;
  }

  // RAG-style: cache N document chunks, then serve a prompt that stitches
  // them in a DIFFERENT order behind a fresh question header. Returns TTFT.
  TimeNs RunRag(bool pic) {
    sim::Simulator sim;
    flowserve::Engine engine(&sim, Config(pic));
    std::vector<std::vector<TokenId>> docs;
    for (int d = 0; d < 4; ++d) {
      docs.push_back(Iota(512, 10000 + 3000 * d));
    }
    // Warm the cache: one request per document.
    for (int d = 0; d < 4; ++d) {
      workload::RequestSpec warm;
      warm.id = static_cast<workload::RequestId>(d + 1);
      warm.prompt = docs[static_cast<size_t>(d)];
      warm.decode_len = 2;
      engine.Submit(warm, nullptr, nullptr);
    }
    sim.Run();
    // The served prompt: header + docs in reversed order (prefix match fails
    // past the first token, PIC matches every document block).
    workload::RequestSpec spec;
    spec.id = 100;
    spec.prompt = Iota(64, 99000);
    for (int d = 3; d >= 0; --d) {
      spec.prompt.insert(spec.prompt.end(), docs[static_cast<size_t>(d)].begin(),
                         docs[static_cast<size_t>(d)].end());
    }
    spec.decode_len = 2;
    TimeNs submit = sim.Now();
    TimeNs first = 0;
    engine.Submit(spec, [&](const flowserve::Sequence& seq) { first = seq.first_token_time; },
                  nullptr);
    sim.Run();
    pic_reused_ = engine.stats().pic_reused_tokens;
    return first - submit;
  }

  int64_t pic_reused_ = 0;
};

TEST_F(EnginePicTest, RagPromptPrefillsFasterWithPic) {
  TimeNs without = RunRag(false);
  EXPECT_EQ(pic_reused_, 0);
  TimeNs with = RunRag(true);
  EXPECT_GT(pic_reused_, 1500);  // ~4 x 512 tokens rediscovered by content
  // EPIC-style gain: most of the prefill compute is discounted.
  EXPECT_LT(static_cast<double>(with), 0.6 * static_cast<double>(without));
}

TEST_F(EnginePicTest, PicBlocksReleasedAfterCompletion) {
  sim::Simulator sim;
  flowserve::Engine engine(&sim, Config(true));
  workload::RequestSpec warm;
  warm.id = 1;
  warm.prompt = Iota(256, 5000);
  warm.decode_len = 2;
  engine.Submit(warm, nullptr, nullptr);
  sim.Run();
  workload::RequestSpec spec;
  spec.id = 2;
  spec.prompt = Iota(32, 90000);
  spec.prompt.insert(spec.prompt.end(), warm.prompt.begin(), warm.prompt.end());
  spec.decode_len = 2;
  engine.Submit(spec, nullptr, nullptr);
  sim.Run();
  EXPECT_TRUE(engine.idle());
  // All PIC pins released: every cached block is unreferenced again.
  EXPECT_TRUE(engine.rtc().EnsureNpuFree(engine.kv_block_capacity()).ok());
}

// Pins the exact step-shape arithmetic. AttendedTokens(past, c) =
// c*past + c*(c+1)/2; the PIC discount shrinks the chunk's *compute* tokens
// (effective = floor(chunk * keep)) but those tokens still attend over the
// full physical past context — the regression this test guards was scaling
// the past-context term by effective/chunk too.
TEST_F(EnginePicTest, StepShapeAttendedTokensPinned) {
  sim::Simulator sim;
  flowserve::EngineConfig config = Config(true);
  config.prefill_chunk_tokens = 64;
  flowserve::Engine engine(&sim, config);

  // Plain 128-token prompt, two 64-token chunks, no reuse:
  // A(0,64) + A(64,64) = 2080 + 6176 = 8256.
  workload::RequestSpec plain;
  plain.id = 1;
  plain.prompt = Iota(128, 5000);
  plain.decode_len = 2;
  engine.Submit(plain, nullptr, nullptr);
  sim.Run();
  EXPECT_EQ(engine.stats().prefill_attended_tokens, 8256);

  // PIC request: 64-token header + the now-cached 128-token document.
  // coverage = 128/192, keep = 1 - (2/3)*0.85 = 13/30, effective =
  // floor(64*keep) = 27 per chunk over three chunks:
  // A(0,27) + A(64,27) + A(128,27) = 378 + 2106 + 3834 = 6318.
  int64_t base = engine.stats().prefill_attended_tokens;
  workload::RequestSpec spec;
  spec.id = 2;
  spec.prompt = Iota(64, 90000);
  spec.prompt.insert(spec.prompt.end(), plain.prompt.begin(), plain.prompt.end());
  spec.decode_len = 2;
  engine.Submit(spec, nullptr, nullptr);
  sim.Run();
  EXPECT_EQ(engine.stats().pic_reused_tokens, 128);
  EXPECT_EQ(engine.stats().prefill_attended_tokens - base, 6318);
}

// A preempted sequence must drop its PIC pins along with the rest of its KV:
// the rebuild recomputes from scratch, and pinned-but-unowned blocks would
// both leak pool capacity and leave a stale discount on the resumed prefill.
TEST_F(EnginePicTest, PreemptionReleasesPicPins) {
  sim::Simulator sim;
  flowserve::EngineConfig config = Config(true);
  config.prefill_chunk_tokens = 64;
  config.kv_block_capacity_override = 29;
  flowserve::Engine engine(&sim, config);

  // Warm: cache a 128-token document (8 blocks). decode_len = 1 so the warm
  // request generates no decode tokens — the wait loop below must trigger on
  // the competitor's first decode step, not on this one.
  workload::RequestSpec warm;
  warm.id = 1;
  warm.prompt = Iota(128, 5000);
  warm.decode_len = 1;
  engine.Submit(warm, nullptr, nullptr);
  sim.Run();

  // A long-decoding competitor (service class 0) claims the pool first.
  workload::RequestSpec hog;
  hog.id = 2;
  hog.prompt = Iota(256, 40000);
  hog.decode_len = 40;
  hog.priority = 0;
  bool hog_done = false;
  engine.Submit(hog, nullptr, [&](const flowserve::Sequence&) { hog_done = true; });
  while (engine.stats().decode_tokens_generated < 1 && sim.Step()) {
  }

  // The PIC request pins the cached document, stalls mid-prefill on the full
  // pool, and is victimized when the competitor's decode grows into a new
  // block. Its completion must report zero PIC reuse: the pins were dropped
  // at preemption and the post-resume prefill ran undiscounted.
  workload::RequestSpec spec;
  spec.id = 3;
  spec.prompt = Iota(64, 90000);
  spec.prompt.insert(spec.prompt.end(), warm.prompt.begin(), warm.prompt.end());
  spec.decode_len = 2;
  spec.priority = 1;
  int64_t pic_tokens_at_completion = -1;
  engine.Submit(spec, nullptr, [&](const flowserve::Sequence& seq) {
    pic_tokens_at_completion = seq.pic_tokens;
  });
  sim.Run();

  EXPECT_TRUE(hog_done);
  EXPECT_EQ(engine.stats().pic_reused_tokens, 128);  // the match did happen
  EXPECT_GE(engine.stats().preemptions, 1);
  EXPECT_EQ(pic_tokens_at_completion, 0);
  EXPECT_TRUE(engine.idle());
  // No leaked pins: the whole pool is reclaimable.
  EXPECT_TRUE(engine.rtc().EnsureNpuFree(engine.kv_block_capacity()).ok());
}

}  // namespace
}  // namespace deepserve
