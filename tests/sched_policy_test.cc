// Focused tests for the Algorithm-1 policy machinery: bench-produced heatmaps
// feeding the scheduler, the PD overload guard, prompt-tree bookkeeping, and
// load-balance gating.

#include <gtest/gtest.h>

#include <memory>

#include "serving/heatmap.h"
#include "serving/job_executor.h"
#include "serving/predictor.h"
#include "serving/task_executor.h"
#include "sim/simulator.h"
#include "workload/tracegen.h"

namespace deepserve::serving {
namespace {

flowserve::EngineConfig SmallEngine(flowserve::EngineRole role) {
  flowserve::EngineConfig config;
  config.model = model::ModelSpec::Tiny1B();
  config.parallelism = {1, 1, 1};
  config.role = role;
  config.kv_block_capacity_override = 8192;
  return config;
}

workload::RequestSpec MakeRequest(workload::RequestId id, int64_t prefill, int64_t decode,
                                  TokenId base = 400) {
  workload::RequestSpec spec;
  spec.id = id;
  spec.decode_len = decode;
  for (int64_t i = 0; i < prefill; ++i) {
    spec.prompt.push_back(base + static_cast<TokenId>(i % 5000));
  }
  return spec;
}

class SchedPolicyTest : public ::testing::Test {
 protected:
  std::unique_ptr<TaskExecutor> MakeTe(TeId id, flowserve::EngineRole role) {
    TeConfig config;
    config.id = id;
    config.engine = SmallEngine(role);
    return std::make_unique<TaskExecutor>(&sim_, std::move(config));
  }
  sim::Simulator sim_;
};

TEST_F(SchedPolicyTest, BenchProducedHeatmapDrivesRouting) {
  // A serialized heatmap in the exact format fig05_pd_heatmap emits: a
  // single row/column grid that always prefers disaggregation.
  auto parsed = PdHeatmap::Parse("1 1\n1024\n1.0\n5.0\n");
  ASSERT_TRUE(parsed.ok());
  JeConfig config;
  config.policy = SchedulingPolicy::kCombined;
  JobExecutor je(&sim_, config, std::move(*parsed), MakeOraclePredictor());
  auto coloc = MakeTe(1, flowserve::EngineRole::kColocated);
  auto prefill = MakeTe(2, flowserve::EngineRole::kPrefillOnly);
  auto decode = MakeTe(3, flowserve::EngineRole::kDecodeOnly);
  je.AddColocatedTe(coloc.get());
  je.AddPrefillTe(prefill.get());
  je.AddDecodeTe(decode.get());
  for (int i = 0; i < 4; ++i) {
    je.HandleRequest(MakeRequest(static_cast<workload::RequestId>(i + 1), 128, 512), {nullptr, nullptr, nullptr});
  }
  sim_.Run();
  // Short-prefill/long-decode requests would default colocated; the loaded
  // all-positive map overrides to disaggregated.
  EXPECT_EQ(je.stats().routed_disaggregated, 4);
  EXPECT_EQ(je.stats().routed_colocated, 0);
}

TEST_F(SchedPolicyTest, OverloadGuardRedirectsToColocated) {
  // All-positive heatmap (always prefer disagg) + a tiny overload threshold:
  // once the pair queues up, traffic must spill to the colocated TE.
  auto map = PdHeatmap::Parse("1 1\n1024\n1.0\n5.0\n");
  ASSERT_TRUE(map.ok());
  JeConfig config;
  config.policy = SchedulingPolicy::kCombined;
  config.pd_overload_factor = 1.0;
  config.pd_overload_slack = 2;
  JobExecutor je(&sim_, config, std::move(*map), MakeOraclePredictor());
  auto coloc = MakeTe(1, flowserve::EngineRole::kColocated);
  auto prefill = MakeTe(2, flowserve::EngineRole::kPrefillOnly);
  auto decode = MakeTe(3, flowserve::EngineRole::kDecodeOnly);
  je.AddColocatedTe(coloc.get());
  je.AddPrefillTe(prefill.get());
  je.AddDecodeTe(decode.get());
  // Burst of simultaneous requests: the first few go disagg, then the guard
  // fires and the rest land on the idle colocated TE.
  for (int i = 0; i < 12; ++i) {
    je.HandleRequest(MakeRequest(static_cast<workload::RequestId>(i + 1), 1024, 512,
                                 static_cast<TokenId>(100 + 613 * i)), {nullptr, nullptr, nullptr});
  }
  sim_.Run();
  EXPECT_GT(je.stats().routed_disaggregated, 0);
  EXPECT_GT(je.stats().routed_colocated, 0);
}

TEST_F(SchedPolicyTest, OverloadGuardAlsoProtectsColocatedSide) {
  // All-negative heatmap (always prefer colocated) with one colocated TE
  // drowning: the guard spills to the idle disaggregated pair.
  auto map = PdHeatmap::Parse("1 1\n1024\n1.0\n-5.0\n");
  ASSERT_TRUE(map.ok());
  JeConfig config;
  config.policy = SchedulingPolicy::kCombined;
  config.pd_overload_factor = 1.0;
  config.pd_overload_slack = 2;
  JobExecutor je(&sim_, config, std::move(*map), MakeOraclePredictor());
  auto coloc = MakeTe(1, flowserve::EngineRole::kColocated);
  auto prefill = MakeTe(2, flowserve::EngineRole::kPrefillOnly);
  auto decode = MakeTe(3, flowserve::EngineRole::kDecodeOnly);
  je.AddColocatedTe(coloc.get());
  je.AddPrefillTe(prefill.get());
  je.AddDecodeTe(decode.get());
  for (int i = 0; i < 12; ++i) {
    je.HandleRequest(MakeRequest(static_cast<workload::RequestId>(i + 1), 1024, 512,
                                 static_cast<TokenId>(100 + 419 * i)), {nullptr, nullptr, nullptr});
  }
  sim_.Run();
  EXPECT_GT(je.stats().routed_colocated, 0);
  EXPECT_GT(je.stats().routed_disaggregated, 0);
}

TEST_F(SchedPolicyTest, LoadBalanceSlackGatesLocality) {
  // With a huge slack the combined policy always takes the locality branch;
  // with slack 0 and unequal queues it always takes the load branch.
  for (int64_t slack : {int64_t{1000}, int64_t{0}}) {
    sim::Simulator sim;
    JeConfig config;
    config.policy = SchedulingPolicy::kCombined;
    config.load_balance_slack = slack;
    JobExecutor je(&sim, config, PdHeatmap::Default(), MakeOraclePredictor());
    TeConfig tec1;
    tec1.id = 1;
    tec1.engine = SmallEngine(flowserve::EngineRole::kColocated);
    TaskExecutor te1(&sim, std::move(tec1));
    TeConfig tec2;
    tec2.id = 2;
    tec2.engine = SmallEngine(flowserve::EngineRole::kColocated);
    TaskExecutor te2(&sim, std::move(tec2));
    je.AddColocatedTe(&te1);
    je.AddColocatedTe(&te2);
    for (int i = 0; i < 6; ++i) {
      je.HandleRequest(MakeRequest(static_cast<workload::RequestId>(i + 1), 512, 64, 777), {nullptr, nullptr, nullptr});
    }
    sim.Run();
    if (slack > 0) {
      EXPECT_GT(je.stats().locality_decisions, 0);
      EXPECT_EQ(je.stats().load_decisions, 0);
    } else {
      EXPECT_GT(je.stats().load_decisions, 0);
    }
  }
}

TEST_F(SchedPolicyTest, PromptTreeCapIsEnforced) {
  JeConfig config;
  config.policy = SchedulingPolicy::kLocalityOnly;
  config.max_tree_nodes = 8;  // tiny cap: constant eviction
  JobExecutor je(&sim_, config, PdHeatmap::Default(), MakeOraclePredictor());
  auto te = MakeTe(1, flowserve::EngineRole::kColocated);
  je.AddColocatedTe(te.get());
  for (int i = 0; i < 64; ++i) {
    je.HandleRequest(MakeRequest(static_cast<workload::RequestId>(i + 1), 256, 2,
                                 static_cast<TokenId>(1000 + 293 * i)), {nullptr, nullptr, nullptr});
  }
  sim_.Run();
  // All requests served despite aggressive tree trimming.
  EXPECT_EQ(te->engine().stats().completed, 64);
}

TEST_F(SchedPolicyTest, PredictorErrorsChangeRouting) {
  // A predictor that always answers "huge decode" pushes borderline requests
  // to colocated; one that answers "tiny decode" pushes them to disagg.
  for (int64_t predicted : {int64_t{8192}, int64_t{8}}) {
    sim::Simulator sim;
    JeConfig config;
    config.policy = SchedulingPolicy::kPdAware;
    JobExecutor je(&sim, config, PdHeatmap::Default(),
                   std::make_unique<ConstantPredictor>(predicted));
    TeConfig tec1;
    tec1.id = 1;
    tec1.engine = SmallEngine(flowserve::EngineRole::kColocated);
    TaskExecutor coloc(&sim, std::move(tec1));
    TeConfig tec2;
    tec2.id = 2;
    tec2.engine = SmallEngine(flowserve::EngineRole::kPrefillOnly);
    TaskExecutor prefill(&sim, std::move(tec2));
    TeConfig tec3;
    tec3.id = 3;
    tec3.engine = SmallEngine(flowserve::EngineRole::kDecodeOnly);
    TaskExecutor decode(&sim, std::move(tec3));
    je.AddColocatedTe(&coloc);
    je.AddPrefillTe(&prefill);
    je.AddDecodeTe(&decode);
    je.HandleRequest(MakeRequest(1, 512, 64), {nullptr, nullptr, nullptr});
    sim.Run();
    if (predicted > 512) {
      EXPECT_EQ(je.stats().routed_colocated, 1);
    } else {
      EXPECT_EQ(je.stats().routed_disaggregated, 1);
    }
  }
}

}  // namespace
}  // namespace deepserve::serving
