// Property-based tests: randomized operation sequences checked against
// reference implementations and conservation invariants, plus parameterized
// whole-engine sweeps (TEST_P / INSTANTIATE_TEST_SUITE_P).

#include <gtest/gtest.h>

#include <algorithm>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <tuple>
#include <vector>

#include "common/rng.h"
#include "common/time_units.h"
#include "flowserve/engine.h"
#include "hw/link.h"
#include "rtc/block_pool.h"
#include "rtc/radix_tree.h"
#include "serving/heatmap.h"
#include "sim/simulator.h"
#include "workload/tracegen.h"

namespace deepserve {
namespace {

// ---------------- RadixTree vs reference model ----------------

struct NoPayload {
  int x = 0;
  NoPayload SplitTail(size_t) { return NoPayload{}; }
};

// Reference: longest common prefix against a stored set of sequences.
size_t ReferenceLcp(const std::vector<std::vector<rtc::BlockKey>>& stored,
                    const std::vector<rtc::BlockKey>& query) {
  size_t best = 0;
  for (const auto& seq : stored) {
    size_t i = 0;
    while (i < seq.size() && i < query.size() && seq[i] == query[i]) {
      ++i;
    }
    best = std::max(best, i);
  }
  return best;
}

class RadixPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RadixPropertyTest, MatchEqualsReferenceLcp) {
  Rng rng(GetParam());
  rtc::RadixTree<NoPayload> tree;
  std::vector<std::vector<rtc::BlockKey>> stored;
  // Insert sequences with deliberately overlapping prefixes from a tiny
  // symbol alphabet so splits happen constantly.
  for (int i = 0; i < 200; ++i) {
    std::vector<rtc::BlockKey> seq;
    size_t len = static_cast<size_t>(rng.UniformInt(1, 24));
    for (size_t j = 0; j < len; ++j) {
      seq.push_back(static_cast<rtc::BlockKey>(rng.UniformInt(1, 4)));
    }
    tree.Insert(seq, static_cast<TimeNs>(i));
    stored.push_back(std::move(seq));
    // Interleave queries with inserts.
    std::vector<rtc::BlockKey> query;
    size_t qlen = static_cast<size_t>(rng.UniformInt(1, 24));
    for (size_t j = 0; j < qlen; ++j) {
      query.push_back(static_cast<rtc::BlockKey>(rng.UniformInt(1, 4)));
    }
    EXPECT_EQ(tree.Match(query).matched, ReferenceLcp(stored, query))
        << "seed " << GetParam() << " iteration " << i;
  }
}

TEST_P(RadixPropertyTest, EveryStoredSequenceFullyMatches) {
  Rng rng(GetParam() ^ 0xabcdef);
  rtc::RadixTree<NoPayload> tree;
  std::vector<std::vector<rtc::BlockKey>> stored;
  for (int i = 0; i < 100; ++i) {
    std::vector<rtc::BlockKey> seq;
    size_t len = static_cast<size_t>(rng.UniformInt(1, 32));
    for (size_t j = 0; j < len; ++j) {
      seq.push_back(static_cast<rtc::BlockKey>(rng.UniformInt(1, 6)));
    }
    tree.Insert(seq, static_cast<TimeNs>(i));
    stored.push_back(std::move(seq));
  }
  for (const auto& seq : stored) {
    EXPECT_EQ(tree.Match(seq).matched, seq.size());
  }
}

TEST_P(RadixPropertyTest, LeafRemovalNeverBreaksOtherMatches) {
  Rng rng(GetParam() ^ 0x1234);
  rtc::RadixTree<NoPayload> tree;
  std::vector<std::vector<rtc::BlockKey>> stored;
  for (int i = 0; i < 60; ++i) {
    std::vector<rtc::BlockKey> seq;
    size_t len = static_cast<size_t>(rng.UniformInt(2, 16));
    for (size_t j = 0; j < len; ++j) {
      seq.push_back(static_cast<rtc::BlockKey>(rng.UniformInt(1, 3)));
    }
    tree.Insert(seq, static_cast<TimeNs>(i));
    stored.push_back(std::move(seq));
  }
  // Remove half the leaves (LRU order), then every surviving full sequence
  // must still match at least up to the removed depth boundary.
  for (int i = 0; i < 30; ++i) {
    auto* leaf = tree.FindLruLeaf([](const auto&) { return true; });
    if (leaf == nullptr) {
      break;
    }
    tree.RemoveLeaf(leaf);
  }
  for (const auto& seq : stored) {
    // Property: Match never crashes and never over-reports.
    auto match = tree.Match(seq);
    EXPECT_LE(match.matched, seq.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RadixPropertyTest, ::testing::Values(1, 7, 42, 1337, 9999));

// ---------------- BlockPool conservation ----------------

class BlockPoolPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(BlockPoolPropertyTest, UsageMatchesShadowAccounting) {
  Rng rng(GetParam());
  rtc::BlockPool pool({.npu_capacity = 64, .dram_capacity = 64});
  std::vector<rtc::BlockId> live;
  std::map<rtc::BlockId, int> refs;
  int64_t shadow_npu = 0;
  int64_t shadow_dram = 0;
  for (int step = 0; step < 2000; ++step) {
    int op = static_cast<int>(rng.UniformInt(0, 5));
    if (op <= 1) {  // allocate
      int64_t n = rng.UniformInt(1, 4);
      auto blocks = pool.Allocate(n, rtc::Tier::kNpu, step);
      if (blocks.ok()) {
        for (auto id : *blocks) {
          live.push_back(id);
          refs[id] = 1;
        }
        shadow_npu += n;
      } else {
        EXPECT_GT(shadow_npu + n, 64);  // failure only when truly full
      }
    } else if (op == 2 && !live.empty()) {  // extra ref
      auto id = live[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1))];
      pool.Ref(id);
      ++refs[id];
    } else if (op == 3 && !live.empty()) {  // unref (maybe destroy)
      size_t idx = static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1));
      auto id = live[idx];
      bool had_dram = pool.info(id).resident(rtc::Tier::kDram);
      pool.Unref(id);
      if (--refs[id] == 0) {
        // Private block destroyed: residency released everywhere.
        shadow_npu -= pool.Exists(id) ? 0 : 1;
        if (!pool.Exists(id) && had_dram) {
          --shadow_dram;
        }
        if (!pool.Exists(id)) {
          live.erase(live.begin() + static_cast<ptrdiff_t>(idx));
          refs.erase(id);
        }
      }
    } else if (op == 4 && !live.empty()) {  // add DRAM copy
      auto id = live[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1))];
      if (!pool.info(id).resident(rtc::Tier::kDram) &&
          pool.AddResidency(id, rtc::Tier::kDram).ok()) {
        ++shadow_dram;
      }
    } else if (op == 5 && !live.empty()) {  // drop DRAM copy
      auto id = live[static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(live.size()) - 1))];
      if (pool.info(id).resident(rtc::Tier::kDram)) {
        pool.DropResidency(id, rtc::Tier::kDram);
        --shadow_dram;
      }
    }
    ASSERT_EQ(pool.used(rtc::Tier::kNpu), shadow_npu) << "step " << step;
    ASSERT_EQ(pool.used(rtc::Tier::kDram), shadow_dram) << "step " << step;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockPoolPropertyTest, ::testing::Values(3, 17, 2024));

// ---------------- SharedLink conservation ----------------

class LinkPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(LinkPropertyTest, AllFlowsCompleteAndRespectBandwidth) {
  Rng rng(GetParam());
  sim::Simulator sim;
  const double bw = 1e9;
  hw::SharedLink link(&sim, "p", hw::LinkType::kPcie, bw, UsToNs(10));
  int completed = 0;
  Bytes total = 0;
  TimeNs last_start = 0;
  const int flows = 50;
  for (int i = 0; i < flows; ++i) {
    TimeNs start = last_start + static_cast<TimeNs>(rng.UniformInt(0, 40)) * 1000000;
    last_start = start;
    Bytes bytes = static_cast<Bytes>(rng.UniformInt(1, 200)) * 1000000;
    total += bytes;
    sim.ScheduleAt(start, [&link, bytes, &completed] {
      link.StartFlow(bytes, [&completed] { ++completed; });
    });
  }
  sim.Run();
  EXPECT_EQ(completed, flows);
  EXPECT_EQ(link.total_bytes_transferred(), total);
  EXPECT_EQ(link.active_flows(), 0u);
  // The link cannot finish faster than serializing every byte at full
  // bandwidth from the first start.
  EXPECT_GE(NsToS(sim.Now()), static_cast<double>(total) / bw - 0.05);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LinkPropertyTest, ::testing::Values(5, 55, 555));

// ---------------- Heatmap round trip ----------------

class HeatmapPropertyTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HeatmapPropertyTest, SerializeParsePreservesEveryCell) {
  Rng rng(GetParam());
  std::vector<int64_t> prefill;
  int64_t edge = 128;
  for (int i = 0; i < 4; ++i) {
    prefill.push_back(edge);
    edge *= 2;
  }
  std::vector<double> ratios = {0.1, 0.5, 1.5};
  serving::PdHeatmap map(prefill, ratios);
  for (size_t r = 0; r < map.rows(); ++r) {
    for (size_t c = 0; c < map.cols(); ++c) {
      map.AddCell(r, c, rng.Normal(0, 1));
    }
  }
  auto parsed = serving::PdHeatmap::Parse(map.Serialize());
  ASSERT_TRUE(parsed.ok());
  for (size_t r = 0; r < map.rows(); ++r) {
    for (size_t c = 0; c < map.cols(); ++c) {
      EXPECT_NEAR(parsed->cell(r, c), map.cell(r, c), 1e-4);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HeatmapPropertyTest, ::testing::Values(2, 22, 222));

// ---------------- Whole-engine sweeps ----------------

// Dimensions: (model preset, chunked?, adaptive?, pic?, priority mix?).
using EngineSweepParam = std::tuple<const char*, bool, bool, bool>;

class EnginePropertySweep : public ::testing::TestWithParam<EngineSweepParam> {};

TEST_P(EnginePropertySweep, RandomWorkloadAlwaysDrainsCleanly) {
  auto [model_name, chunked, adaptive, pic] = GetParam();
  sim::Simulator sim;
  flowserve::EngineConfig config;
  config.model = model::ModelSpec::Preset(model_name).value();
  config.parallelism = {1, 1, 1};
  config.kv_block_capacity_override = 2048;
  config.enable_chunked_prefill = chunked;
  config.adaptive_chunking = adaptive;
  config.enable_pic = pic;
  flowserve::Engine engine(&sim, config);
  Rng rng(0x5eed ^ std::hash<std::string>{}(model_name));
  int completed = 0;
  int first_tokens = 0;
  const int n = 24;
  for (int i = 0; i < n; ++i) {
    workload::RequestSpec spec;
    spec.id = static_cast<workload::RequestId>(i + 1);
    spec.arrival = SToNs(rng.Uniform(0, 5));
    spec.decode_len = rng.UniformInt(1, 96);
    spec.priority = static_cast<int>(rng.UniformInt(0, 2));
    int64_t prefill = rng.UniformInt(16, 2048);
    for (int64_t j = 0; j < prefill; ++j) {
      spec.prompt.push_back(static_cast<TokenId>(rng.UniformInt(256, 20000)));
    }
    sim.ScheduleAt(spec.arrival, [&engine, &completed, &first_tokens, spec] {
      engine.Submit(spec, [&first_tokens](const flowserve::Sequence&) { ++first_tokens; },
                    [&completed](const flowserve::Sequence&) { ++completed; });
    });
  }
  sim.Run();
  EXPECT_EQ(completed, n);
  EXPECT_EQ(first_tokens, n);
  EXPECT_TRUE(engine.idle());
  EXPECT_EQ(engine.load().running, 0);
  // Every remaining NPU block is reclaimable cache, not a leaked pin.
  EXPECT_TRUE(engine.rtc().EnsureNpuFree(engine.kv_block_capacity()).ok());
}

INSTANTIATE_TEST_SUITE_P(
    Configs, EnginePropertySweep,
    ::testing::Combine(::testing::Values("tiny-1b", "llama3-8b", "mixtral-8x7b"),
                       ::testing::Bool(), ::testing::Bool(), ::testing::Bool()));

// Random cancellation storms never corrupt the engine.
class CancelStormTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(CancelStormTest, RandomCancelsLeaveEngineConsistent) {
  Rng rng(GetParam());
  sim::Simulator sim;
  flowserve::EngineConfig config;
  config.model = model::ModelSpec::Tiny1B();
  config.parallelism = {1, 1, 1};
  config.kv_block_capacity_override = 1024;
  flowserve::Engine engine(&sim, config);
  std::set<workload::RequestId> completed;
  const int n = 30;
  for (int i = 0; i < n; ++i) {
    workload::RequestSpec spec;
    spec.id = static_cast<workload::RequestId>(i + 1);
    spec.decode_len = rng.UniformInt(8, 128);
    int64_t prefill = rng.UniformInt(64, 1024);
    for (int64_t j = 0; j < prefill; ++j) {
      spec.prompt.push_back(static_cast<TokenId>(rng.UniformInt(256, 9000)));
    }
    TimeNs at = SToNs(rng.Uniform(0, 2));
    sim.ScheduleAt(at, [&engine, &completed, spec] {
      engine.Submit(spec, nullptr, [&completed, id = spec.id](const flowserve::Sequence&) {
        completed.insert(id);
      });
    });
    // Randomly cancel ~1/3 of them at a random later moment.
    if (rng.Bernoulli(0.33)) {
      sim.ScheduleAt(at + SToNs(rng.Uniform(0.01, 1.5)), [&engine, id = spec.id] {
        (void)engine.Cancel(id);  // may have already finished: either is fine
      });
    }
  }
  sim.Run();
  EXPECT_TRUE(engine.idle());
  // Cancelled + completed = everything; no request vanished silently.
  EXPECT_EQ(static_cast<int64_t>(completed.size()) + engine.stats().cancelled, n);
  EXPECT_TRUE(engine.rtc().EnsureNpuFree(engine.kv_block_capacity()).ok());
}

INSTANTIATE_TEST_SUITE_P(Seeds, CancelStormTest, ::testing::Values(11, 31, 71, 101));

// Trace generation is monotone in RPS (more requests) and duration.
class TraceSweep : public ::testing::TestWithParam<double> {};

TEST_P(TraceSweep, RequestCountScalesWithRps) {
  double rps = GetParam();
  auto low = workload::TraceGenerator(workload::TraceGenerator::InternalTrace(rps, 120, 5))
                 .Generate();
  auto high =
      workload::TraceGenerator(workload::TraceGenerator::InternalTrace(rps * 2, 120, 5))
          .Generate();
  EXPECT_GT(high.size(), low.size());
  EXPECT_NEAR(static_cast<double>(low.size()), rps * 120, rps * 120 * 0.35 + 10);
}

INSTANTIATE_TEST_SUITE_P(Rates, TraceSweep, ::testing::Values(0.5, 1.0, 2.0, 5.0));

}  // namespace
}  // namespace deepserve
