// PD-disaggregated serving in detail: one prefill TE and one decode TE, KV
// hand-off over DistFlow, comparing the by-request and by-layer transfer
// modes (§4.5). Shows the per-request timeline: prefill done -> KV delivered
// -> decode task completes.

#include <cstdio>

#include "common/time_units.h"
#include "distflow/distflow.h"
#include "hw/cluster.h"
#include "serving/cluster_manager.h"
#include "sim/simulator.h"
#include "workload/tracegen.h"

using namespace deepserve;

namespace {

void RunMode(flowserve::KvTransferMode mode, const char* label) {
  sim::Simulator sim;
  hw::ClusterConfig cluster_config;
  cluster_config.num_machines = 2;
  hw::Cluster cluster(&sim, cluster_config);
  distflow::TransferEngine transfer(&sim, &cluster, {});
  serving::ClusterManager manager(&sim, &cluster, &transfer);

  flowserve::EngineConfig engine;
  engine.model = model::ModelSpec::Yi34B();
  engine.parallelism = {4, 1, 1};
  engine.kv_transfer_mode = mode;

  engine.role = flowserve::EngineRole::kPrefillOnly;
  auto prefill_te = manager.CreateReadyTe(engine).value();
  engine.role = flowserve::EngineRole::kDecodeOnly;
  auto decode_te = manager.CreateReadyTe(engine).value();
  DS_CHECK_OK(transfer.LinkCluster({prefill_te->id(), decode_te->id()}, nullptr));
  sim.Run();

  std::printf("--- %s ---\n", label);
  auto batch = workload::TraceGenerator::FixedBatch(4, 2048, 128, /*seed=*/11);
  for (const auto& spec : batch) {
    TimeNs submit = sim.Now();
    prefill_te->SubmitPrefill(
        spec, decode_te,
        {[submit, &spec](const flowserve::Sequence& seq) {
           std::printf("req %llu: prefill of %lld tokens done, first token @ %.0f ms\n",
                       static_cast<unsigned long long>(spec.id),
                       static_cast<long long>(spec.prefill_len()),
                       NsToMs(seq.first_token_time - submit));
         },
         [submit, &spec](const flowserve::Sequence& seq) {
           std::printf("req %llu: decode finished @ %.0f ms (%lld tokens)\n",
                       static_cast<unsigned long long>(spec.id),
                       NsToMs(seq.finish_time - submit),
                       static_cast<long long>(spec.decode_len));
         },
         nullptr});
  }
  sim.Run();
  Bytes kv_per_req = static_cast<Bytes>(2048) * engine.model.KvBytesPerToken();
  std::printf("KV per request: %.2f GiB; DistFlow moved %.2f GiB total "
              "(by-layer streams all but the last layer during prefill)\n\n",
              BytesToGiB(kv_per_req), BytesToGiB(transfer.stats().bytes_moved));
}

}  // namespace

int main() {
  std::printf("PD-disaggregated serving: 1P1D, 34B TP=4, 2K-token prompts\n\n");
  RunMode(flowserve::KvTransferMode::kByRequest, "by-request KV transfer");
  RunMode(flowserve::KvTransferMode::kByLayer, "by-layer KV transfer (overlapped)");
  return 0;
}
