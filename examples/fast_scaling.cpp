// Fast scaling end-to-end: a traffic burst hits an underprovisioned service,
// the AUTOSCALER reacts, and pre-warmed pods + DRAM pre-loading + NPU-fork
// bring new TEs up in seconds (§6). Prints the scaling timeline and the
// effect on queueing.

#include <cstdio>

#include "common/time_units.h"
#include "distflow/distflow.h"
#include "hw/cluster.h"
#include "serving/cluster_manager.h"
#include "serving/job_executor.h"
#include "serving/predictor.h"
#include "sim/simulator.h"
#include "workload/metrics.h"
#include "workload/tracegen.h"

using namespace deepserve;

int main() {
  sim::Simulator sim;
  hw::ClusterConfig cluster_config;
  cluster_config.num_machines = 8;
  hw::Cluster cluster(&sim, cluster_config);
  distflow::TransferEngine transfer(&sim, &cluster, {});
  serving::ClusterManager manager(&sim, &cluster, &transfer);

  // Platform preparation: pre-warmed pools + predictive model pre-loading.
  manager.ReservePrewarmedPods(8);
  manager.ReservePrewarmedTes(8);
  manager.PredictivePreload({model::ModelSpec::Llama3_8B()});
  sim.Run();
  const TimeNs t0 = sim.Now();  // preload streaming finished here

  serving::JeConfig je_config;
  je_config.policy = serving::SchedulingPolicy::kLoadOnly;
  serving::JobExecutor je(&sim, je_config, serving::PdHeatmap::Default(),
                          serving::MakeOraclePredictor());

  flowserve::EngineConfig engine;
  engine.model = model::ModelSpec::Llama3_8B();
  engine.parallelism = {1, 1, 1};
  auto first_te = manager.CreateReadyTe(engine).value();
  je.AddColocatedTe(first_te);

  serving::AutoscalerConfig as;
  as.check_interval = SToNs(1.0);
  as.scale_up_queue_depth = 12;
  as.scale_down_queue_depth = 0;
  as.max_tes = 6;
  serving::ScaleRequest request;
  request.engine = engine;
  request.fork_source = first_te->id();  // NPU-fork from the live TE
  manager.StartAutoscaler(&je, as, request);

  // Baseline load for 20 s, then a 5x burst for 60 s.
  workload::MetricsCollector metrics;
  auto replay = [&](double rps, double start_s, double duration_s, uint64_t seed) {
    auto config = workload::TraceGenerator::InternalTrace(rps, duration_s, seed);
    config.prefill = workload::LengthDistribution{1024, 0.25, 128, 4096};
    auto trace = workload::TraceGenerator(config).Generate();
    for (auto& spec : trace) {
      spec.arrival += t0 + SToNs(start_s);
      spec.id += seed * 1000000;
      sim.ScheduleAt(spec.arrival, [&, spec] {
        je.HandleRequest(spec, {nullptr, [&metrics, spec](const flowserve::Sequence& seq) {
          workload::RequestRecord record;
          record.id = spec.id;
          record.arrival = spec.arrival;
          record.first_token = seq.first_token_time;
          record.completion = seq.finish_time;
          record.prefill_len = spec.prefill_len();
          record.decode_len = spec.decode_len;
          metrics.Record(record);
        }, nullptr});
      });
    }
  };
  replay(0.5, 0, 20, 1);
  replay(4.0, 20, 60, 2);

  // Observe fleet size every 5 s.
  std::printf("time   ready-TEs  scale-ups  (burst arrives at t=20s)\n");
  for (int t = 5; t <= 120; t += 5) {
    sim.ScheduleAt(t0 + SToNs(t), [&, t] {
      int ready = 0;
      for (const auto& te : manager.tes()) {
        if (te->ready()) {
          ++ready;
        }
      }
      std::printf("%3ds %10d %10lld\n", t, ready,
                  static_cast<long long>(manager.stats().scale_ups));
    });
  }

  sim.RunUntil(t0 + SToNs(200));
  manager.StopAutoscaler();
  sim.Run();

  std::printf("\nburst handled: %s\n", metrics.Summary().c_str());
  std::printf("scaling: %lld scale-ups (%lld NPU-forks, %lld pre-warmed pods, "
              "%lld pre-warmed TEs, %lld DRAM hits)\n",
              static_cast<long long>(manager.stats().scale_ups),
              static_cast<long long>(manager.stats().npu_forks),
              static_cast<long long>(manager.stats().prewarmed_pod_hits),
              static_cast<long long>(manager.stats().prewarmed_te_hits),
              static_cast<long long>(manager.stats().dram_hits));
  return 0;
}
