// A multi-tenant chat service on the full DeepServe platform: cluster, Job
// Executor with the combined scheduling policy (Algorithm 1), a mixed fleet
// of PD-colocated TEs and a PD-disaggregated pair, and an online trace.
// Prints the request/job/task ledger and fleet-level statistics.

#include <cstdio>
#include <map>

#include "common/time_units.h"
#include "distflow/distflow.h"
#include "hw/cluster.h"
#include "serving/cluster_manager.h"
#include "serving/job_executor.h"
#include "serving/predictor.h"
#include "sim/simulator.h"
#include "workload/metrics.h"
#include "workload/tracegen.h"

using namespace deepserve;

int main() {
  sim::Simulator sim;
  hw::ClusterConfig cluster_config;
  cluster_config.num_machines = 4;
  hw::Cluster cluster(&sim, cluster_config);
  distflow::TransferEngine transfer(&sim, &cluster, {});
  serving::ClusterManager manager(&sim, &cluster, &transfer);

  serving::JeConfig je_config;
  je_config.policy = serving::SchedulingPolicy::kCombined;
  serving::JobExecutor je(&sim, je_config, serving::PdHeatmap::Default(),
                          serving::MakeNoisyPredictor(0.9, 42));

  flowserve::EngineConfig engine;
  engine.model = model::ModelSpec::Yi34B();
  engine.parallelism = {4, 1, 1};

  // Fleet: 2 colocated TEs + one 1P1D pair, DistFlow-linked.
  std::vector<distflow::EndpointId> endpoints;
  engine.role = flowserve::EngineRole::kColocated;
  for (int i = 0; i < 2; ++i) {
    auto te = manager.CreateReadyTe(engine).value();
    je.AddColocatedTe(te);
    endpoints.push_back(te->id());
  }
  engine.role = flowserve::EngineRole::kPrefillOnly;
  auto prefill_te = manager.CreateReadyTe(engine).value();
  je.AddPrefillTe(prefill_te);
  endpoints.push_back(prefill_te->id());
  engine.role = flowserve::EngineRole::kDecodeOnly;
  auto decode_te = manager.CreateReadyTe(engine).value();
  je.AddDecodeTe(decode_te);
  endpoints.push_back(decode_te->id());
  DS_CHECK_OK(transfer.LinkCluster(endpoints, nullptr));
  sim.Run();

  // 90 seconds of the code-generation trace (varied prompt/decode shapes, so
  // Algorithm 1 exercises both routes) at 1 request/second.
  auto trace = workload::TraceGenerator(workload::TraceGenerator::CodeGenTrace(1.0, 90.0))
                   .Generate();
  workload::MetricsCollector metrics;
  std::map<workload::RequestId, TimeNs> first_tokens;
  for (const auto& spec : trace) {
    sim.ScheduleAt(spec.arrival, [&, spec] {
      je.HandleRequest(
          spec, {[&first_tokens, id = spec.id](const flowserve::Sequence& seq) {
            first_tokens[id] = seq.first_token_time;
          }, [&metrics, &first_tokens, spec](const flowserve::Sequence& seq) {
            workload::RequestRecord record;
            record.id = spec.id;
            record.arrival = spec.arrival;
            auto it = first_tokens.find(spec.id);
            record.first_token = it != first_tokens.end() ? it->second : seq.first_token_time;
            record.completion = seq.finish_time;
            record.prefill_len = spec.prefill_len();
            record.decode_len = spec.decode_len;
            metrics.Record(record);
          }, nullptr});
    });
  }
  sim.Run();

  std::printf("chat service summary: %s\n\n", metrics.Summary().c_str());
  std::printf("scheduling: %lld requests -> %lld colocated, %lld disaggregated "
              "(%lld locality picks, %lld load picks, %lld prefix hits)\n",
              static_cast<long long>(je.stats().requests),
              static_cast<long long>(je.stats().routed_colocated),
              static_cast<long long>(je.stats().routed_disaggregated),
              static_cast<long long>(je.stats().locality_decisions),
              static_cast<long long>(je.stats().load_decisions),
              static_cast<long long>(je.stats().locality_hits));

  // The request-job-task ledger: show the first disaggregated job's tasks.
  for (const auto& job : je.jobs()) {
    if (job.tasks.size() == 2) {
      std::printf("\njob %llu (request %llu) ran as two tasks:\n",
                  static_cast<unsigned long long>(job.id),
                  static_cast<unsigned long long>(job.request));
      for (serving::TaskId task_id : job.tasks) {
        const auto& task = je.tasks()[task_id - 1];
        std::printf("  task %llu [%s] on TE %d: %.1f ms\n",
                    static_cast<unsigned long long>(task.id),
                    std::string(serving::TaskTypeToString(task.type)).c_str(), task.te,
                    NsToMs(task.completed - task.dispatched));
      }
      break;
    }
  }

  std::printf("\nper-TE load:\n");
  for (const auto& te : manager.tes()) {
    std::printf("  TE %d (%s): %lld requests, %lld steps, cache hit %.0f%%\n", te->id(),
                std::string(flowserve::EngineRoleToString(te->role())).c_str(),
                static_cast<long long>(te->engine().stats().submitted),
                static_cast<long long>(te->engine().stats().steps),
                100.0 * te->engine().rtc().stats().TokenHitRate());
  }
  std::printf("\nDistFlow: %lld transfers, %.2f GiB moved\n",
              static_cast<long long>(transfer.stats().transfers),
              BytesToGiB(transfer.stats().bytes_moved));
  return 0;
}
