// Quickstart: serve a few chat completions on a single FlowServe engine.
//
// This is the smallest useful DeepServe program: build an engine for a model
// preset, submit prompts (through the real tokenizer), and read back
// per-request latency metrics. Everything runs on the deterministic virtual
// clock — the printed latencies are simulated serving latencies on the
// modelled Ascend hardware, and re-running always reproduces them.

#include <cstdio>

#include "common/time_units.h"
#include "flowserve/engine.h"
#include "sim/simulator.h"
#include "workload/request.h"

using namespace deepserve;

int main() {
  sim::Simulator sim;

  // A 34B-class model sharded TP=4 across Gen2 NPUs — the paper's standard
  // serving instance.
  flowserve::EngineConfig config;
  config.model = model::ModelSpec::Yi34B();
  config.npu_spec = hw::NpuSpec::Gen2();
  config.parallelism = {4, 1, 1};
  flowserve::Engine engine(&sim, config);

  const char* prompts[] = {
      "Summarize the DeepServe paper in three sentences for a systems audience",
      "Summarize the DeepServe paper in three sentences but make it rhyme",
      "Write a haiku about prefill and decode disaggregation in the cloud",
  };
  std::printf("submitting %zu requests to %s (%s)\n\n", std::size(prompts),
              config.model.name.c_str(), config.parallelism.ToString().c_str());

  workload::RequestId next_id = 1;
  TimeNs arrival = 0;
  for (const char* text : prompts) {
    workload::RequestSpec spec;
    spec.id = next_id++;
    // Stagger arrivals so later requests can reuse the preserved KV of
    // earlier ones (the shared system prompt).
    arrival += SToNs(3.0);
    spec.arrival = arrival;
    spec.prompt = engine.tokenizer().Encode(text);
    // Pad the prompt to a realistic context (pretend there is a long system
    // prompt ahead of the user text). The first two prompts share it, so the
    // second request hits the prefix cache.
    std::vector<TokenId> padded = engine.tokenizer().Encode(
        "You are a helpful careful assistant running on DeepServe. Answer precisely.");
    for (int i = 0; i < 40; ++i) {
      padded.insert(padded.end(), padded.begin(), padded.begin() + 8);
    }
    padded.insert(padded.end(), spec.prompt.begin(), spec.prompt.end());
    spec.prompt = std::move(padded);
    spec.decode_len = 96;

    sim.ScheduleAt(arrival, [&engine, spec] {
      engine.Submit(
        spec,
        [](const flowserve::Sequence& seq) {
          std::printf("req %llu: first token at %.1f ms (reused %lld cached tokens)\n",
                      static_cast<unsigned long long>(seq.request_id),
                      NsToMs(seq.first_token_time - seq.arrival),
                      static_cast<long long>(seq.reused_tokens));
        },
        [](const flowserve::Sequence& seq) {
          double tpot = NsToMs(seq.finish_time - seq.first_token_time) /
                        static_cast<double>(seq.decode_target - 1);
          std::printf("req %llu: done at %.1f ms, TPOT %.2f ms\n",
                      static_cast<unsigned long long>(seq.request_id),
                      NsToMs(seq.finish_time - seq.arrival), tpot);
          });
    });
  }

  sim.Run();

  const auto& stats = engine.stats();
  std::printf("\nengine: %lld steps, %lld prefill tokens, %lld decode tokens, "
              "%lld reused tokens, NPU busy %.2f s (virtual)\n",
              static_cast<long long>(stats.steps),
              static_cast<long long>(stats.prefill_tokens_processed),
              static_cast<long long>(stats.decode_tokens_generated),
              static_cast<long long>(stats.reused_tokens), NsToS(stats.npu_busy));
  return 0;
}
