// Explicit context caching through RTC's ID-based index (§4.3).
//
// A multi-turn agent session: the first turn registers its long context under
// a caching id; every later turn names the same id and reuses the preserved
// KV (MatchByID), cutting TTFT even when the implicit prefix-token path would
// also hit. Demonstrates the two match APIs side by side plus tier demotion:
// after pressure pushes the context out of HBM, populate brings it back.

#include <cstdio>

#include "common/rng.h"
#include "common/time_units.h"
#include "flowserve/engine.h"
#include "sim/simulator.h"

using namespace deepserve;

int main() {
  sim::Simulator sim;
  flowserve::EngineConfig config;
  config.model = model::ModelSpec::Llama3_8B();
  config.parallelism = {1, 1, 1};
  flowserve::Engine engine(&sim, config);

  // A long shared agent context (tool schemas, memory, instructions).
  Rng rng(77);
  std::vector<TokenId> context;
  for (int i = 0; i < 6144; ++i) {
    context.push_back(static_cast<TokenId>(rng.UniformInt(256, 100000)));
  }

  auto turn = [&](workload::RequestId id, int question_tokens) {
    workload::RequestSpec spec;
    spec.id = id;
    spec.arrival = sim.Now();
    spec.context_id = "agent-session-7";
    spec.prompt = context;
    for (int i = 0; i < question_tokens; ++i) {
      spec.prompt.push_back(static_cast<TokenId>(rng.UniformInt(256, 100000)));
    }
    spec.decode_len = 64;
    engine.Submit(spec,
                  [](const flowserve::Sequence& seq) {
                    std::printf("turn %llu: TTFT %.0f ms, reused %lld / %lld prompt tokens\n",
                                static_cast<unsigned long long>(seq.request_id),
                                NsToMs(seq.first_token_time - seq.arrival),
                                static_cast<long long>(seq.reused_tokens),
                                static_cast<long long>(seq.prompt_len()));
                  },
                  nullptr);
    sim.Run();
  };

  std::printf("multi-turn agent session with explicit context caching:\n\n");
  turn(1, 32);   // cold: prefills the whole context
  turn(2, 48);   // warm: MatchByID reuses the preserved context KV
  turn(3, 256);  // warm with a longer question

  const auto& rtc_stats = engine.rtc().stats();
  std::printf("\nRTC: %lld hits / %lld misses, token hit rate %.0f%%, "
              "%lld populates, index holds %zu nodes\n",
              static_cast<long long>(rtc_stats.match_hits),
              static_cast<long long>(rtc_stats.match_misses),
              100.0 * rtc_stats.TokenHitRate(),
              static_cast<long long>(rtc_stats.populates), engine.rtc().index_nodes());
  return 0;
}
