// Agent serving on DeepServe: one agent session is a sequence of serving
// jobs that share a growing context. Between model calls the agent executes
// tools (simulated latency), during which its context would lose its NPU
// residency under memory pressure — explicit context caching (RTC's ID
// index) plus populate brings it back cheaply when the next turn arrives.
//
// Prints per-turn TTFT with and without context caching, showing why the
// agent endpoint uses explicit IDs rather than relying on implicit prefix
// matching alone.

#include <cstdio>
#include <vector>

#include "common/rng.h"
#include "common/time_units.h"
#include "flowserve/engine.h"
#include "sim/simulator.h"

using namespace deepserve;

namespace {

struct TurnResult {
  double ttft_ms;
  int64_t reused;
};

// Runs an 6-turn agent session; each turn appends tool output to the context.
std::vector<TurnResult> RunSession(bool use_context_cache) {
  sim::Simulator sim;
  flowserve::EngineConfig config;
  config.model = model::ModelSpec::Llama3_8B();
  config.parallelism = {1, 1, 1};
  flowserve::Engine engine(&sim, config);

  Rng rng(21);
  std::vector<TokenId> context;
  for (int i = 0; i < 3072; ++i) {  // system prompt + tool schemas
    context.push_back(static_cast<TokenId>(rng.UniformInt(256, 100000)));
  }

  std::vector<TurnResult> turns;
  workload::RequestId next_id = 1;
  for (int turn = 0; turn < 6; ++turn) {
    workload::RequestSpec spec;
    spec.id = next_id++;
    spec.arrival = sim.Now();
    if (use_context_cache) {
      spec.context_id = "agent-session";
    }
    spec.prompt = context;
    // The agent framework stamps the current time into the system prompt:
    // the token prefix changes every turn, so implicit prefix matching dies
    // while the explicit ID still resolves the preserved context.
    spec.prompt[0] = static_cast<TokenId>(256 + turn);
    spec.decode_len = 96;  // the model decides the next tool call
    TurnResult result{0, 0};
    engine.Submit(spec,
                  [&](const flowserve::Sequence& seq) {
                    result.ttft_ms = NsToMs(seq.first_token_time - seq.arrival);
                    result.reused = seq.reused_tokens;
                  },
                  nullptr);
    sim.Run();
    turns.push_back(result);
    // Tool execution: the agent is away for a while; other tenants churn the
    // cache meanwhile (filler prefills from a different "tenant").
    for (int f = 0; f < 3; ++f) {
      workload::RequestSpec filler;
      filler.id = next_id++;
      filler.decode_len = 8;
      for (int j = 0; j < 4096; ++j) {
        filler.prompt.push_back(static_cast<TokenId>(rng.UniformInt(256, 100000)));
      }
      engine.Submit(filler, nullptr, nullptr);
    }
    sim.RunUntil(sim.Now() + SToNs(5));  // tool latency
    sim.Run();
    // The turn's transcript (tool output) extends the context.
    for (int j = 0; j < 512; ++j) {
      context.push_back(static_cast<TokenId>(rng.UniformInt(256, 100000)));
    }
  }
  return turns;
}

}  // namespace

int main() {
  std::printf("6-turn agent session, 3K-token base context growing 512 tokens/turn,\n"
              "5 s of tool execution between turns, cache churn from other tenants\n\n");
  auto cached = RunSession(true);
  auto uncached = RunSession(false);
  std::printf("%6s %22s %26s\n", "turn", "implicit-only TTFT", "with context-cache id");
  for (size_t t = 0; t < cached.size(); ++t) {
    std::printf("%6zu %15.0f ms %17.0f ms  (reused %lld tokens)\n", t + 1,
                uncached[t].ttft_ms, cached[t].ttft_ms,
                static_cast<long long>(cached[t].reused));
  }
  std::printf("\nThe agent framework stamps a timestamp into the system prompt, so the\n"
              "token prefix changes every turn: implicit prefix matching loses the\n"
              "whole context and TTFT grows with it, while the explicit ID keeps\n"
              "resolving the preserved KV regardless of the edited prefix.\n");
  return 0;
}
