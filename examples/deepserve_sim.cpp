// deepserve_sim — command-line experiment runner.
//
// Builds a fleet on the simulated cluster, replays a synthetic trace through
// the Job Executor, and prints (or exports) the serving metrics. Everything
// is a flag, so new experiments need no recompilation:
//
//   deepserve_sim --model=yi-34b --tp=4 --colocated=2 --prefill-tes=1
//                 --decode-tes=1 --policy=combined --trace=internal
//                 --rps=1.0 --duration=60 --seed=42 --csv=/tmp/run.csv
//
// Engine scheduling policy (src/flowserve/sched/): --sched-policy=fcfs|slo|
// priority-preempt, --tbt-ms=<slo TBT budget>, --deadline-ms=<per-request
// completion deadline; expired/unmeetable requests are shed under slo>.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "distflow/distflow.h"
#include "hw/cluster.h"
#include "serving/cluster_manager.h"
#include "serving/job_executor.h"
#include "serving/predictor.h"
#include "sim/simulator.h"
#include "workload/metrics.h"
#include "workload/tracegen.h"

using namespace deepserve;

namespace {

struct Flags {
  std::string model = "yi-34b";
  int tp = 4;
  int colocated = 2;
  int prefill_tes = 0;
  int decode_tes = 0;
  std::string policy = "combined";
  std::string sched_policy = "fcfs";  // engine policy: fcfs|slo|priority-preempt
  double tbt_ms = 0.0;                // slo TBT budget (0 = unbounded)
  double ttft_ms = 0.0;               // TTFT SLO budget, counted only (0 = off)
  double deadline_ms = 0.0;           // per-request deadline (0 = none)
  std::string trace = "internal";
  double rps = 1.0;
  double peak_rps = 0.0;  // bursty trace peak (0 = 4x rps)
  double period = 0.0;    // bursty trace period seconds (0 = duration / 3)
  double duration = 60.0;
  uint64_t seed = 42;
  double predictor_accuracy = 0.9;
  std::string csv;
  std::string gen = "gen2";
  // Autoscaler: empty = off; reactive|predictive|slo runs the colocated group
  // between min 1 and --max-tes TEs over the trace.
  std::string scale_policy;
  int headroom = 1;
  bool drain = true;  // graceful drain on scale-down (0 = legacy instant stop)
  int max_tes = 8;
};

bool ParseFlags(int argc, char** argv, Flags* flags) {
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto eq = arg.find('=');
    if (arg.rfind("--", 0) != 0 || eq == std::string::npos) {
      std::fprintf(stderr, "bad flag: %s (expected --key=value)\n", arg.c_str());
      return false;
    }
    std::string key = arg.substr(2, eq - 2);
    std::string value = arg.substr(eq + 1);
    if (key == "model") {
      flags->model = value;
    } else if (key == "tp") {
      flags->tp = std::atoi(value.c_str());
    } else if (key == "colocated") {
      flags->colocated = std::atoi(value.c_str());
    } else if (key == "prefill-tes") {
      flags->prefill_tes = std::atoi(value.c_str());
    } else if (key == "decode-tes") {
      flags->decode_tes = std::atoi(value.c_str());
    } else if (key == "policy") {
      flags->policy = value;
    } else if (key == "sched-policy") {
      flags->sched_policy = value;
    } else if (key == "tbt-ms") {
      flags->tbt_ms = std::atof(value.c_str());
    } else if (key == "ttft-ms") {
      flags->ttft_ms = std::atof(value.c_str());
    } else if (key == "deadline-ms") {
      flags->deadline_ms = std::atof(value.c_str());
    } else if (key == "trace") {
      flags->trace = value;
    } else if (key == "rps") {
      flags->rps = std::atof(value.c_str());
    } else if (key == "peak-rps") {
      flags->peak_rps = std::atof(value.c_str());
    } else if (key == "period") {
      flags->period = std::atof(value.c_str());
    } else if (key == "scale-policy") {
      flags->scale_policy = value;
    } else if (key == "headroom") {
      flags->headroom = std::atoi(value.c_str());
    } else if (key == "drain") {
      flags->drain = std::atoi(value.c_str()) != 0;
    } else if (key == "max-tes") {
      flags->max_tes = std::atoi(value.c_str());
    } else if (key == "duration") {
      flags->duration = std::atof(value.c_str());
    } else if (key == "seed") {
      flags->seed = std::strtoull(value.c_str(), nullptr, 10);
    } else if (key == "predictor") {
      flags->predictor_accuracy = std::atof(value.c_str());
    } else if (key == "csv") {
      flags->csv = value;
    } else if (key == "gen") {
      flags->gen = value;
    } else {
      std::fprintf(stderr, "unknown flag --%s\n", key.c_str());
      return false;
    }
  }
  return true;
}

Result<serving::SchedulingPolicy> ParsePolicy(const std::string& name) {
  static const std::map<std::string, serving::SchedulingPolicy> kPolicies = {
      {"rr", serving::SchedulingPolicy::kRoundRobin},
      {"load", serving::SchedulingPolicy::kLoadOnly},
      {"locality", serving::SchedulingPolicy::kLocalityOnly},
      {"pd-aware", serving::SchedulingPolicy::kPdAware},
      {"combined", serving::SchedulingPolicy::kCombined},
  };
  auto it = kPolicies.find(name);
  if (it == kPolicies.end()) {
    return InvalidArgumentError("unknown policy " + name +
                                " (rr|load|locality|pd-aware|combined)");
  }
  return it->second;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    return 2;
  }
  auto model = model::ModelSpec::Preset(flags.model);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 2;
  }
  auto policy = ParsePolicy(flags.policy);
  if (!policy.ok()) {
    std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
    return 2;
  }

  sim::Simulator sim;
  hw::ClusterConfig cluster_config;
  int instances = flags.colocated + flags.prefill_tes + flags.decode_tes;
  cluster_config.npu_spec = flags.gen == "gen1" ? hw::NpuSpec::Gen1() : hw::NpuSpec::Gen2();
  cluster_config.num_machines =
      std::max(1, (instances * flags.tp + cluster_config.npus_per_machine - 1) /
                      cluster_config.npus_per_machine);
  hw::Cluster cluster(&sim, cluster_config);
  distflow::TransferEngine transfer(&sim, &cluster, {});
  serving::ClusterManager manager(&sim, &cluster, &transfer);

  serving::JeConfig je_config;
  je_config.policy = *policy;
  serving::JobExecutor je(&sim, je_config, serving::PdHeatmap::Default(),
                          flags.predictor_accuracy >= 1.0
                              ? serving::MakeOraclePredictor()
                              : serving::MakeNoisyPredictor(flags.predictor_accuracy,
                                                            flags.seed));

  flowserve::EngineConfig engine;
  engine.model = *model;
  engine.npu_spec = cluster_config.npu_spec;
  engine.parallelism = {flags.tp, 1, 1};
  engine.sched.policy = flags.sched_policy;
  engine.sched.tbt_budget_ms = flags.tbt_ms;
  engine.sched.ttft_budget_ms = flags.ttft_ms;
  std::vector<distflow::EndpointId> endpoints;
  auto add_te = [&](flowserve::EngineRole role) -> bool {
    engine.role = role;
    auto te = manager.CreateReadyTe(engine);
    if (!te.ok()) {
      std::fprintf(stderr, "TE creation failed: %s\n", te.status().ToString().c_str());
      return false;
    }
    endpoints.push_back((*te)->id());
    switch (role) {
      case flowserve::EngineRole::kColocated:
        je.AddColocatedTe(*te);
        break;
      case flowserve::EngineRole::kPrefillOnly:
        je.AddPrefillTe(*te);
        break;
      case flowserve::EngineRole::kDecodeOnly:
        je.AddDecodeTe(*te);
        break;
    }
    return true;
  };
  for (int i = 0; i < flags.colocated; ++i) {
    if (!add_te(flowserve::EngineRole::kColocated)) {
      return 1;
    }
  }
  for (int i = 0; i < flags.prefill_tes; ++i) {
    if (!add_te(flowserve::EngineRole::kPrefillOnly)) {
      return 1;
    }
  }
  for (int i = 0; i < flags.decode_tes; ++i) {
    if (!add_te(flowserve::EngineRole::kDecodeOnly)) {
      return 1;
    }
  }
  DS_CHECK_OK(transfer.LinkCluster(endpoints, nullptr));
  sim.Run();

  bool autoscale = !flags.scale_policy.empty();
  if (autoscale) {
    // Pre-warm pools + DRAM preload so mid-trace scale-ups ride the fast path.
    manager.ReservePrewarmedPods(flags.max_tes);
    manager.ReservePrewarmedTes(flags.max_tes);
    for (int m = 0; m < cluster_config.num_machines; ++m) {
      manager.PreloadModelToDram(m, *model);
    }
    sim.Run();
    manager.AddFailureHandler([&je](serving::TeId id) { je.OnTeFailure(id); });
  }
  // Preloading advances sim time; shift trace arrivals so t=0 lands "now".
  const TimeNs t0 = sim.Now();

  workload::TraceConfig trace_config =
      flags.trace == "codegen"
          ? workload::TraceGenerator::CodeGenTrace(flags.rps, flags.duration, flags.seed)
          : workload::TraceGenerator::InternalTrace(flags.rps, flags.duration, flags.seed);
  std::vector<workload::RequestSpec> trace;
  if (flags.trace == "bursty") {
    double peak = flags.peak_rps > 0 ? flags.peak_rps : flags.rps * 4.0;
    double period = flags.period > 0 ? flags.period : flags.duration / 3.0;
    trace = workload::TraceGenerator(trace_config).GenerateBursty(flags.rps, peak, period);
  } else {
    trace = workload::TraceGenerator(trace_config).Generate();
  }
  for (auto& spec : trace) {
    spec.arrival += t0;
  }
  if (flags.deadline_ms > 0) {
    for (auto& spec : trace) {
      spec.deadline = spec.arrival + MillisecondsToNs(flags.deadline_ms);
    }
  }

  if (autoscale) {
    serving::AutoscalerConfig as_config;
    as_config.policy = flags.scale_policy;
    as_config.headroom_tes = flags.headroom;
    as_config.graceful_drain = flags.drain;
    as_config.min_tes = 1;
    as_config.max_tes = flags.max_tes;
    engine.role = flowserve::EngineRole::kColocated;
    manager.StartAutoscaler(&je, as_config, serving::ScaleRequest{engine});
  }
  std::printf("deepserve_sim: %s %s, %d coloc + %dP%dD (tp%d, %s), policy=%s, "
              "sched=%s, %.2f rps x %.0fs -> %zu requests\n",
              flags.model.c_str(), flags.gen.c_str(), flags.colocated, flags.prefill_tes,
              flags.decode_tes, flags.tp, cluster_config.npu_spec.name.c_str(),
              flags.policy.c_str(), flags.sched_policy.c_str(), flags.rps, flags.duration,
              trace.size());

  workload::MetricsCollector metrics;
  std::map<workload::RequestId, TimeNs> first_tokens;
  int64_t errored = 0;
  for (const auto& spec : trace) {
    sim.ScheduleAt(spec.arrival, [&, spec] {
      je.HandleRequest(
          spec, {[&first_tokens, id = spec.id](const flowserve::Sequence& seq) {
            first_tokens[id] = seq.first_token_time;
          }, [&metrics, &first_tokens, spec](const flowserve::Sequence& seq) {
            workload::RequestRecord record;
            record.id = spec.id;
            record.arrival = spec.arrival;
            auto it = first_tokens.find(spec.id);
            record.first_token = it != first_tokens.end() ? it->second : seq.first_token_time;
            record.completion = seq.finish_time;
            record.prefill_len = spec.prefill_len();
            record.decode_len = spec.decode_len;
            metrics.Record(record);
          }, [&errored](const Status&) { ++errored; }});
    });
  }
  if (autoscale) {
    // The autoscaler's periodic tick keeps the queue non-empty: run to the
    // trace horizon, stop it, then drain the remaining in-flight work.
    sim.RunUntil(t0 + SecondsToNs(flags.duration));
    manager.StopAutoscaler();
  }
  sim.Run();

  std::printf("%s\n", metrics.Summary().c_str());
  if (autoscale) {
    const serving::AutoscalerStats& as = manager.autoscaler()->stats();
    std::printf("autoscaler(%s): %lld scale-ups, %lld scale-downs; drains %lld done "
                "(%.1f ms mean, %lld seqs drained), %lld aborted, %lld timed out\n",
                flags.scale_policy.c_str(),
                static_cast<long long>(manager.stats().scale_ups),
                static_cast<long long>(manager.stats().scale_downs),
                static_cast<long long>(as.drains_completed), as.mean_drain_ms(),
                static_cast<long long>(as.drained_seqs),
                static_cast<long long>(as.drains_aborted),
                static_cast<long long>(as.drain_timeouts));
  }
  if (errored > 0) {
    std::printf("errored (shed / deadline exceeded): %lld of %zu\n",
                static_cast<long long>(errored), trace.size());
  }
  std::printf("routing: %lld colocated, %lld disaggregated; locality hits %lld\n",
              static_cast<long long>(je.stats().routed_colocated),
              static_cast<long long>(je.stats().routed_disaggregated),
              static_cast<long long>(je.stats().locality_hits));
  if (!flags.csv.empty()) {
    Status status = metrics.WriteCsvFile(flags.csv);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("per-request metrics written to %s\n", flags.csv.c_str());
  }
  return 0;
}
