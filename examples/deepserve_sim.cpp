// deepserve_sim — command-line experiment runner.
//
// Builds a fleet on the simulated cluster, replays a synthetic trace through
// the Job Executor, and prints (or exports) the serving metrics. Everything
// is a flag, so new experiments need no recompilation:
//
//   deepserve_sim --model=yi-34b --tp=4 --colocated=2 --prefill-tes=1
//                 --decode-tes=1 --policy=combined --trace=internal
//                 --rps=1.0 --duration=60 --seed=42 --csv=/tmp/run.csv
//
// Engine scheduling policy (src/flowserve/sched/): --sched-policy=fcfs|slo|
// priority-preempt, --tbt-ms=<slo TBT budget>, --deadline-ms=<per-request
// completion deadline; expired/unmeetable requests are shed under slo>.
//
// Frontend traffic management (src/serving/route_policy.h): requests flow
// through a Frontend over --je-replicas JE replicas (each with its own copy
// of the --colocated/--prefill-tes/--decode-tes fleet). --lb-policy picks the
// routing policy (rr|p2c|wlc|slo), --hedge-ms arms straggler hedging,
// --retry-budget caps crash re-dispatches fleet-wide, and --outlier-errors /
// --outlier-base-s / --outlier-max-s configure outlier ejection. Run with
// --help for the full flag table.
//
// Replicated control plane (src/ctrl/): --ctrl-replicas=N puts the CM's TE
// directory and every JE's job table on a shared sequenced log with N
// replicas (--ctrl-latency-ms / --ctrl-lease-ms tune replication lag and the
// leader lease). The default (1) keeps the historical unreplicated control
// plane, bit-identical to builds without the flag.

#include <cstdio>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "bench/common.h"
#include "common/time_units.h"
#include "distflow/distflow.h"
#include "hw/cluster.h"
#include "serving/cluster_manager.h"
#include "serving/frontend.h"
#include "serving/job_executor.h"
#include "serving/predictor.h"
#include "serving/route_policy.h"
#include "sim/simulator.h"
#include "workload/metrics.h"
#include "workload/tracegen.h"

using namespace deepserve;

namespace {

struct Flags {
  std::string model = "yi-34b";
  int tp = 4;
  int colocated = 2;
  int prefill_tes = 0;
  int decode_tes = 0;
  int je_replicas = 1;  // JE replicas behind the frontend (fleet per replica)
  std::string policy = "combined";
  std::string sched_policy = "fcfs";  // engine policy: fcfs|slo|priority-preempt
  double tbt_ms = 0.0;                // slo TBT budget (0 = unbounded)
  double ttft_ms = 0.0;               // TTFT SLO budget, counted only (0 = off)
  double deadline_ms = 0.0;           // per-request deadline (0 = none)
  std::string trace = "internal";
  double rps = 1.0;
  double peak_rps = 0.0;  // bursty trace peak (0 = 4x rps)
  double period = 0.0;    // bursty trace period seconds (0 = duration / 3)
  double duration = 60.0;
  uint64_t seed = 42;
  double predictor_accuracy = 0.9;
  std::string csv;
  std::string gen = "gen2";
  // Heterogeneous cluster: "gen1:2,gen2:2" builds 2 Gen1 + 2 Gen2 machines
  // (machine order follows the mix) and turns on cost-aware placement +
  // dispatch. Empty = homogeneous --gen cluster, bit-identical to before.
  std::string npu_mix;
  double npu_cost_gen1 = 0.0;  // $/NPU-hour override (0 = preset)
  double npu_cost_gen2 = 0.0;
  bool hetero_blind = false;  // ignore generations when placing/dispatching
  bool superpod = false;      // add the UB fabric tier between HCCS and RoCE
  double ub_gbps = 196.0;
  int machines_per_superpod = 0;  // 0 = whole cluster is one SuperPod
  // Autoscaler: empty = off; reactive|predictive|slo runs replica 0's
  // colocated group between min 1 and --max-tes TEs over the trace.
  std::string scale_policy;
  int headroom = 1;
  int drain = 1;  // graceful drain on scale-down (0 = legacy instant stop)
  int max_tes = 8;
  bench::RouteOptions route;  // --lb-policy / --hedge-ms / --retry-budget / --outlier-*
  bench::CtrlOptions ctrl;    // --ctrl-replicas / --ctrl-latency-ms / --ctrl-lease-ms
};

bool ParseFlags(int argc, char** argv, Flags* flags) {
  bench::OptionRegistry registry;
  registry.Flag("model", &flags->model, "model preset (yi-34b, tiny-1b, ...)");
  registry.Flag("tp", &flags->tp, "tensor-parallel degree per TE");
  registry.Flag("colocated", &flags->colocated, "PD-colocated TEs per JE replica");
  registry.Flag("prefill-tes", &flags->prefill_tes, "prefill-only TEs per JE replica");
  registry.Flag("decode-tes", &flags->decode_tes, "decode-only TEs per JE replica");
  registry.Flag("je-replicas", &flags->je_replicas,
                "JE replicas behind the frontend, each with its own fleet");
  registry.Flag("policy", &flags->policy,
                "JE scheduling policy: rr|load|locality|pd-aware|combined");
  registry.Flag("sched-policy", &flags->sched_policy,
                "engine scheduling policy: fcfs|slo|priority-preempt");
  registry.Flag("tbt-ms", &flags->tbt_ms, "slo TBT budget (0 = unbounded)");
  registry.Flag("ttft-ms", &flags->ttft_ms, "TTFT SLO budget, counted only (0 = off)");
  registry.Flag("deadline-ms", &flags->deadline_ms, "per-request deadline (0 = none)");
  registry.Flag("trace", &flags->trace, "trace shape: internal|codegen|bursty");
  registry.Flag("rps", &flags->rps, "arrival rate (bursty: base rate)");
  registry.Flag("peak-rps", &flags->peak_rps, "bursty trace peak (0 = 4x rps)");
  registry.Flag("period", &flags->period, "bursty trace period seconds (0 = duration/3)");
  registry.Flag("duration", &flags->duration, "trace horizon in seconds");
  registry.Flag("seed", &flags->seed, "trace / predictor / p2c seed");
  registry.Flag("predictor", &flags->predictor_accuracy,
                "decode-length predictor accuracy (1.0 = oracle)");
  registry.Flag("csv", &flags->csv, "write per-request metrics CSV here");
  registry.Flag("gen", &flags->gen, "NPU generation: gen1|gen2");
  registry.Flag("npu-mix", &flags->npu_mix,
                "heterogeneous machine mix, e.g. gen1:2,gen2:2 (empty = homogeneous --gen)");
  registry.Flag("npu-cost-gen1", &flags->npu_cost_gen1,
                "Gen1 $/NPU-hour override (0 = preset)");
  registry.Flag("npu-cost-gen2", &flags->npu_cost_gen2,
                "Gen2 $/NPU-hour override (0 = preset)");
  registry.Flag("hetero-blind", &flags->hetero_blind,
                "generation-blind placement and dispatch (baseline)");
  registry.Flag("superpod", &flags->superpod, "enable the SuperPod UB fabric tier");
  registry.Flag("ub-gbps", &flags->ub_gbps, "UB fabric bandwidth in GB/s");
  registry.Flag("machines-per-superpod", &flags->machines_per_superpod,
                "SuperPod size in machines (0 = whole cluster)");
  registry.Flag("scale-policy", &flags->scale_policy,
                "autoscaler policy over replica 0 (empty = off): reactive|predictive|slo");
  registry.Flag("headroom", &flags->headroom, "autoscaler headroom TEs");
  registry.Flag("drain", &flags->drain, "graceful drain on scale-down (0 = instant stop)");
  registry.Flag("max-tes", &flags->max_tes, "autoscaler ceiling");
  flags->route.Register(registry);
  flags->ctrl.Register(registry);
  std::vector<char*> rest = registry.Parse(argc, argv);
  for (size_t i = 1; i < rest.size(); ++i) {
    std::fprintf(stderr, "unknown flag %s (see --help)\n", rest[i]);
    return false;
  }
  return true;
}

Result<serving::SchedulingPolicy> ParsePolicy(const std::string& name) {
  static const std::map<std::string, serving::SchedulingPolicy> kPolicies = {
      {"rr", serving::SchedulingPolicy::kRoundRobin},
      {"load", serving::SchedulingPolicy::kLoadOnly},
      {"locality", serving::SchedulingPolicy::kLocalityOnly},
      {"pd-aware", serving::SchedulingPolicy::kPdAware},
      {"combined", serving::SchedulingPolicy::kCombined},
  };
  auto it = kPolicies.find(name);
  if (it == kPolicies.end()) {
    return InvalidArgumentError("unknown policy " + name +
                                " (rr|load|locality|pd-aware|combined)");
  }
  return it->second;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags;
  if (!ParseFlags(argc, argv, &flags)) {
    return 2;
  }
  auto model = model::ModelSpec::Preset(flags.model);
  if (!model.ok()) {
    std::fprintf(stderr, "%s\n", model.status().ToString().c_str());
    return 2;
  }
  auto policy = ParsePolicy(flags.policy);
  if (!policy.ok()) {
    std::fprintf(stderr, "%s\n", policy.status().ToString().c_str());
    return 2;
  }
  // Validate --lb-policy up front for a clean CLI error (the Frontend itself
  // treats an unknown policy as a programming error).
  auto lb_policy = serving::MakeRoutePolicy(flags.route.ToConfig(flags.seed));
  if (!lb_policy.ok()) {
    std::fprintf(stderr, "%s\n", lb_policy.status().ToString().c_str());
    return 2;
  }

  if (flags.je_replicas < 1) {
    std::fprintf(stderr, "--je-replicas must be >= 1\n");
    return 2;
  }
  sim::Simulator sim;
  hw::ClusterConfig cluster_config;
  int instances =
      flags.je_replicas * (flags.colocated + flags.prefill_tes + flags.decode_tes);
  cluster_config.npu_spec = flags.gen == "gen1" ? hw::NpuSpec::Gen1() : hw::NpuSpec::Gen2();
  cluster_config.num_machines =
      std::max(1, (instances * flags.tp + cluster_config.npus_per_machine - 1) /
                      cluster_config.npus_per_machine);
  if (!flags.npu_mix.empty()) {
    auto mix = hw::ParseNpuMix(flags.npu_mix);
    if (!mix.ok()) {
      std::fprintf(stderr, "%s\n", mix.status().ToString().c_str());
      return 2;
    }
    for (auto& spec : *mix) {
      if (spec.name == "ascend-gen1" && flags.npu_cost_gen1 > 0) {
        spec.cost_per_hour = flags.npu_cost_gen1;
      }
      if (spec.name == "ascend-gen2" && flags.npu_cost_gen2 > 0) {
        spec.cost_per_hour = flags.npu_cost_gen2;
      }
    }
    cluster_config.machine_specs = *mix;
    cluster_config.num_machines = static_cast<int>(mix->size());
    if (instances * flags.tp > cluster_config.num_machines * cluster_config.npus_per_machine) {
      std::fprintf(stderr, "--npu-mix supplies %d machines but the fleet needs %d NPUs\n",
                   cluster_config.num_machines, instances * flags.tp);
      return 2;
    }
  }
  if (flags.superpod) {
    cluster_config.enable_superpod = true;
    cluster_config.ub_gbps = flags.ub_gbps;
    cluster_config.machines_per_superpod = flags.machines_per_superpod;
  }
  hw::Cluster cluster(&sim, cluster_config);
  distflow::TransferEngine transfer(&sim, &cluster, {});
  // Outlives `manager` (the CM detaches its state machine at destruction).
  std::unique_ptr<ctrl::ControlLog> ctrl_log;
  if (flags.ctrl.replicated()) {
    ctrl_log = std::make_unique<ctrl::ControlLog>(&sim, flags.ctrl.ToConfig());
  }
  serving::ClusterManager manager(&sim, &cluster, &transfer, {}, {}, ctrl_log.get());
  if (!flags.npu_mix.empty() && flags.hetero_blind) {
    serving::PlacementConfig placement;
    placement.hetero_aware = false;
    manager.SetPlacement(placement);
  }

  serving::JeConfig je_config;
  je_config.policy = *policy;
  je_config.cost_aware = !flags.npu_mix.empty() && !flags.hetero_blind;
  std::vector<std::unique_ptr<serving::JobExecutor>> jes;
  for (int r = 0; r < flags.je_replicas; ++r) {
    jes.push_back(std::make_unique<serving::JobExecutor>(
        &sim, je_config, serving::PdHeatmap::Default(),
        flags.predictor_accuracy >= 1.0
            ? serving::MakeOraclePredictor()
            : serving::MakeNoisyPredictor(flags.predictor_accuracy, flags.seed)));
    if (ctrl_log != nullptr) {
      // Each replica's job table gets its own log domain; AttachControl also
      // registers the replica's TE-failure handler with the manager.
      jes.back()->AttachControl(ctrl_log.get(), &manager);
    }
  }

  flowserve::EngineConfig engine;
  engine.model = *model;
  engine.npu_spec = cluster_config.npu_spec;
  if (!flags.npu_mix.empty()) {
    // Each TE's cost model must reflect the silicon it actually lands on.
    engine.npu_spec = cluster_config.machine_specs.front();
    engine.npu_spec_from_placement = true;
  }
  engine.parallelism = {flags.tp, 1, 1};
  engine.sched.policy = flags.sched_policy;
  engine.sched.tbt_budget_ms = flags.tbt_ms;
  engine.sched.ttft_budget_ms = flags.ttft_ms;
  std::vector<distflow::EndpointId> endpoints;
  auto add_te = [&](serving::JobExecutor* je, flowserve::EngineRole role) -> bool {
    engine.role = role;
    auto te = manager.CreateReadyTe(engine);
    if (!te.ok()) {
      std::fprintf(stderr, "TE creation failed: %s\n", te.status().ToString().c_str());
      return false;
    }
    endpoints.push_back((*te)->id());
    switch (role) {
      case flowserve::EngineRole::kColocated:
        je->AddColocatedTe(*te);
        break;
      case flowserve::EngineRole::kPrefillOnly:
        je->AddPrefillTe(*te);
        break;
      case flowserve::EngineRole::kDecodeOnly:
        je->AddDecodeTe(*te);
        break;
    }
    return true;
  };
  for (auto& je : jes) {
    for (int i = 0; i < flags.colocated; ++i) {
      if (!add_te(je.get(), flowserve::EngineRole::kColocated)) {
        return 1;
      }
    }
    for (int i = 0; i < flags.prefill_tes; ++i) {
      if (!add_te(je.get(), flowserve::EngineRole::kPrefillOnly)) {
        return 1;
      }
    }
    for (int i = 0; i < flags.decode_tes; ++i) {
      if (!add_te(je.get(), flowserve::EngineRole::kDecodeOnly)) {
        return 1;
      }
    }
  }
  DS_CHECK_OK(transfer.LinkCluster(endpoints, nullptr));
  sim.Run();

  serving::Frontend frontend(&sim, flags.route.ToConfig(flags.seed));
  for (auto& je : jes) {
    frontend.RegisterServingJe(flags.model, je.get());
  }

  bool autoscale = !flags.scale_policy.empty();
  if (autoscale) {
    // Pre-warm pools + DRAM preload so mid-trace scale-ups ride the fast path.
    manager.ReservePrewarmedPods(flags.max_tes);
    manager.ReservePrewarmedTes(flags.max_tes);
    for (int m = 0; m < cluster_config.num_machines; ++m) {
      manager.PreloadModelToDram(m, *model);
    }
    sim.Run();
  }
  if (ctrl_log == nullptr) {
    // With a shared control log, AttachControl already registered per-JE
    // failure handlers; registering again would double-dispatch retries.
    manager.AddFailureHandler([&jes](serving::TeId id) {
      for (auto& je : jes) {
        je->OnTeFailure(id);
      }
    });
  }
  // Preloading advances sim time; shift trace arrivals so t=0 lands "now".
  const TimeNs t0 = sim.Now();

  workload::TraceConfig trace_config =
      flags.trace == "codegen"
          ? workload::TraceGenerator::CodeGenTrace(flags.rps, flags.duration, flags.seed)
          : workload::TraceGenerator::InternalTrace(flags.rps, flags.duration, flags.seed);
  std::vector<workload::RequestSpec> trace;
  if (flags.trace == "bursty") {
    double peak = flags.peak_rps > 0 ? flags.peak_rps : flags.rps * 4.0;
    double period = flags.period > 0 ? flags.period : flags.duration / 3.0;
    trace = workload::TraceGenerator(trace_config).GenerateBursty(flags.rps, peak, period);
  } else {
    trace = workload::TraceGenerator(trace_config).Generate();
  }
  for (auto& spec : trace) {
    spec.arrival += t0;
  }
  if (flags.deadline_ms > 0) {
    for (auto& spec : trace) {
      spec.deadline = spec.arrival + MsToNs(flags.deadline_ms);
    }
  }

  if (autoscale) {
    serving::AutoscalerConfig as_config;
    as_config.policy = flags.scale_policy;
    as_config.headroom_tes = flags.headroom;
    as_config.graceful_drain = flags.drain;
    as_config.min_tes = 1;
    as_config.max_tes = flags.max_tes;
    engine.role = flowserve::EngineRole::kColocated;
    manager.StartAutoscaler(jes[0].get(), as_config, serving::ScaleRequest{engine});
  }
  std::printf("deepserve_sim: %s %s, %d x (%d coloc + %dP%dD) (tp%d, %s), policy=%s, "
              "sched=%s, lb=%s, %.2f rps x %.0fs -> %zu requests\n",
              flags.model.c_str(), flags.gen.c_str(), flags.je_replicas, flags.colocated,
              flags.prefill_tes, flags.decode_tes, flags.tp,
              cluster_config.npu_spec.name.c_str(), flags.policy.c_str(),
              flags.sched_policy.c_str(), flags.route.lb_policy.c_str(), flags.rps,
              flags.duration, trace.size());
  if (!flags.npu_mix.empty()) {
    std::printf("hetero: mix=%s, placement=%s, superpod=%s\n", flags.npu_mix.c_str(),
                flags.hetero_blind ? "blind" : "cost-aware",
                cluster_config.enable_superpod ? "on" : "off");
  }

  workload::MetricsCollector metrics;
  std::map<workload::RequestId, TimeNs> first_tokens;
  int64_t errored = 0;
  int64_t rejected = 0;
  for (const auto& spec : trace) {
    sim.ScheduleAt(spec.arrival, [&, spec] {
      serving::ChatRequest request;
      request.model = flags.model;
      request.spec = spec;
      request.deadline = spec.deadline;
      serving::ResponseHandler handler{
          [&first_tokens, id = spec.id](const flowserve::Sequence& seq) {
            first_tokens[id] = seq.first_token_time;
          },
          [&metrics, &first_tokens, spec](const flowserve::Sequence& seq) {
            workload::RequestRecord record;
            record.id = spec.id;
            record.arrival = spec.arrival;
            auto it = first_tokens.find(spec.id);
            record.first_token = it != first_tokens.end() ? it->second : seq.first_token_time;
            record.completion = seq.finish_time;
            record.prefill_len = spec.prefill_len();
            record.decode_len = spec.decode_len;
            metrics.Record(record);
          },
          [&errored](const Status&) { ++errored; }};
      // Pre-dispatch rejections report through the Status; the handler never
      // fires for them.
      if (!frontend.ChatCompletion(std::move(request), std::move(handler)).ok()) {
        ++rejected;
      }
    });
  }
  if (autoscale) {
    // The autoscaler's periodic tick keeps the queue non-empty: run to the
    // trace horizon, stop it, then drain the remaining in-flight work.
    sim.RunUntil(t0 + SToNs(flags.duration));
    manager.StopAutoscaler();
  }
  sim.Run();

  std::printf("%s\n", metrics.Summary().c_str());
  if (autoscale) {
    const serving::AutoscalerStats& as = manager.autoscaler()->stats();
    std::printf("autoscaler(%s): %lld scale-ups, %lld scale-downs; drains %lld done "
                "(%.1f ms mean, %lld seqs drained), %lld aborted, %lld timed out\n",
                flags.scale_policy.c_str(),
                static_cast<long long>(manager.stats().scale_ups),
                static_cast<long long>(manager.stats().scale_downs),
                static_cast<long long>(as.drains_completed), as.mean_drain_ms(),
                static_cast<long long>(as.drained_seqs),
                static_cast<long long>(as.drains_aborted),
                static_cast<long long>(as.drain_timeouts));
  }
  if (errored > 0 || rejected > 0) {
    std::printf("errored (shed / deadline exceeded): %lld, rejected pre-dispatch: %lld "
                "of %zu\n",
                static_cast<long long>(errored), static_cast<long long>(rejected),
                trace.size());
  }
  int64_t routed_colocated = 0;
  int64_t routed_disaggregated = 0;
  int64_t locality_hits = 0;
  for (auto& je : jes) {
    routed_colocated += je->stats().routed_colocated;
    routed_disaggregated += je->stats().routed_disaggregated;
    locality_hits += je->stats().locality_hits;
  }
  std::printf("routing: %lld colocated, %lld disaggregated; locality hits %lld\n",
              static_cast<long long>(routed_colocated),
              static_cast<long long>(routed_disaggregated),
              static_cast<long long>(locality_hits));
  if (!flags.npu_mix.empty()) {
    int64_t narrowed = 0;
    int64_t fallbacks = 0;
    for (auto& je : jes) {
      narrowed += je->stats().cost_narrowed;
      fallbacks += je->stats().cost_fallbacks;
    }
    std::printf("hetero dispatch: %lld cost-narrowed, %lld fallbacks\n",
                static_cast<long long>(narrowed), static_cast<long long>(fallbacks));
  }
  const serving::FrontendStats& fe = frontend.stats();
  if (fe.hedges_launched > 0 || fe.ejections > 0 || fe.rejected_total() > 0) {
    std::printf("traffic(%s): %lld hedges (%lld wins, %lld cancels), %lld ejections "
                "(%lld readmissions), %lld rejected\n",
                flags.route.lb_policy.c_str(), static_cast<long long>(fe.hedges_launched),
                static_cast<long long>(fe.hedge_wins),
                static_cast<long long>(fe.hedge_cancels),
                static_cast<long long>(fe.ejections),
                static_cast<long long>(fe.readmissions),
                static_cast<long long>(fe.rejected_total()));
  }
  if (!flags.csv.empty()) {
    Status status = metrics.WriteCsvFile(flags.csv);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
    std::printf("per-request metrics written to %s\n", flags.csv.c_str());
  }
  return 0;
}
